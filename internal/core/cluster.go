// Package core assembles the StopWatch cloud: machines, replicated guests
// under the StopWatch VMM (or single guests under the baseline VMM), the
// ingress/egress gateway pair, the inter-VMM proposal and pacing protocols
// over reliable multicast, and external clients. It is the integration
// layer every experiment and example builds on.
package core

import (
	"errors"
	"fmt"

	"stopwatch/internal/gateway"
	"stopwatch/internal/guest"
	"stopwatch/internal/metrics"
	"stopwatch/internal/multicast"
	"stopwatch/internal/netsim"
	"stopwatch/internal/sim"
	"stopwatch/internal/transport"
	"stopwatch/internal/vmm"
	"stopwatch/internal/vtime"
)

// ErrCluster reports invalid cluster configuration or use.
var ErrCluster = errors.New("core: invalid")

// Mode selects the hypervisor under test.
type Mode int

// Modes.
const (
	ModeStopWatch Mode = iota + 1
	ModeBaseline
)

func (m Mode) String() string {
	switch m {
	case ModeStopWatch:
		return "stopwatch"
	case ModeBaseline:
		return "baseline"
	default:
		return "?"
	}
}

// ClusterConfig describes a simulated cloud.
type ClusterConfig struct {
	// Seed drives every random stream in the simulation.
	Seed uint64
	// Hosts is the number of machines.
	Hosts int
	// Shards is the number of fabric shards (simulation loops) the machines
	// are partitioned across (host i → shard i%Shards). 0 means 1. The
	// simulation schedule — and therefore every digest — is identical for
	// every shard count; Shards only chooses how many cores may execute it.
	Shards int
	// Mode selects StopWatch or baseline.
	Mode Mode
	// Replicas per guest under StopWatch (odd; default 3).
	Replicas int
	// VMM carries the hypervisor tunables.
	VMM vmm.Config
	// CloudLink is the intra-cloud fabric link (hosts, gateways).
	CloudLink netsim.LinkConfig
	// ClientLink is the client↔cloud link (the paper's campus WLAN).
	ClientLink netsim.LinkConfig
	// HostDrift, when set, gives host i a drift of HostDrift[i%len].
	HostDrift []float64
	// HostOffset, when set, gives host i a clock offset.
	HostOffset []sim.Time
}

// DefaultClusterConfig returns a three-host StopWatch cloud in the paper's
// regime: sub-millisecond LAN inside the cloud, ~2 ms WLAN to the client.
func DefaultClusterConfig() ClusterConfig {
	return ClusterConfig{
		Seed:     1,
		Hosts:    3,
		Mode:     ModeStopWatch,
		Replicas: 3,
		VMM:      vmm.DefaultConfig(),
		CloudLink: netsim.LinkConfig{
			Latency:   150 * sim.Microsecond,
			JitterMax: 50 * sim.Microsecond,
		},
		// The paper's client sat on a campus 802.11 network: a few ms of
		// latency and ~20 Mbps of bandwidth. Transmission delay dominating
		// disk access is what makes UDP-over-StopWatch competitive with
		// the baselines (Sec. VII-C).
		ClientLink: netsim.LinkConfig{
			Latency:      4 * sim.Millisecond,
			JitterMax:    300 * sim.Microsecond,
			BandwidthBps: 2_500_000,
		},
		HostDrift:  []float64{0, 1.8e-5, -1.2e-5, 0.7e-5, -2.1e-5},
		HostOffset: []sim.Time{0, 2 * sim.Millisecond, 5 * sim.Millisecond, 9 * sim.Millisecond, 13 * sim.Millisecond},
	}
}

// Cluster is a running simulated cloud.
type Cluster struct {
	cfg ClusterConfig
	// loop is the control loop: drivers, the control plane, detectors and
	// lifecycle operations schedule here, and its events run at coordinator
	// barriers while every shard loop is parked — so control code may touch
	// any shard's state, exactly as it always has.
	loop       *sim.Loop
	shardLoops []*sim.Loop
	coord      *sim.Coordinator
	src        *sim.Source
	net        *netsim.Network

	hosts         []*vmm.Host
	hostNodes     []*hostNode
	hostIdxByName map[string]int

	// Stall-detector wiring (detect.go): a positive deadline arms every
	// device model's per-sequence proposal deadline; onStallSuspect
	// receives the machines named silent when one fires. Device-level
	// stalls are recorded per shard and handled at the next barrier
	// (stallQ, drainStalls) so detection never races shard execution.
	stallDeadline  sim.Time
	onStallSuspect func(machine int)
	stallQ         [][]stallRec

	// rcl owns the pre-view-commit survivor reconcile rounds
	// (reconcile.go): sessions are driven from control events and
	// barriers, imports and acks record into its per-shard queues.
	rcl reconciler

	ingress *gateway.Ingress
	egress  *gateway.Egress

	guests map[string]*Guest

	// clients are attached transport-client addresses; guests deployed
	// later still get the configured client link wired to them.
	clients []netsim.Addr

	// started flips at Start; guests deployed afterwards (online
	// admissions) boot immediately.
	started bool

	// scratchNames/scratchAddrs back reconcileGroups' live-set computation.
	scratchNames []string
	scratchAddrs []netsim.Addr

	// propLatency, when non-nil (InstrumentMetrics), is installed on every
	// replica device model — current and future — as its proposal-
	// resolution latency histogram (each replica gets its host shard's cell).
	propLatency *metrics.ShardedHistogram

	// journalGauges/replayLen, when non-nil (InstrumentMetrics), export
	// per-guest journal telemetry (guests deployed later self-register) and
	// the records replayed per replica replacement.
	journalGauges *journalGaugeVecs
	replayLen     *metrics.Histogram
}

// outWork is one deferred fabric send: the packet header and body held
// across the Dom0 output-processing delay. Items are pooled per host node —
// hosts on different shards must never share a freelist.
type outWork struct {
	hn       *hostNode
	src, dst netsim.Addr
	size     int
	kind     string
	body     netsim.PacketBody
	payload  any
}

// allocOut checks a deferred-send item out of the host's pool.
func (hn *hostNode) allocOut() *outWork {
	if k := len(hn.freeOut); k > 0 {
		w := hn.freeOut[k-1]
		hn.freeOut[k-1] = nil
		hn.freeOut = hn.freeOut[:k-1]
		return w
	}
	return &outWork{hn: hn}
}

// absorbTimer models Dom0 absorbing an ambient broadcast packet: the event
// itself is the cost.
func absorbTimer(_, _ any, _ uint64) {}

// outTimer transmits a deferred send and recycles the work item.
func outTimer(_, b any, _ uint64) {
	w := b.(*outWork)
	hn := w.hn
	p := hn.c.net.AllocPacket(w.src, w.dst, w.size, w.kind, w.payload)
	p.Body = w.body
	hn.c.net.Send(p)
	w.body = netsim.PacketBody{}
	w.payload = nil
	hn.freeOut = append(hn.freeOut, w)
}

// Guest is a deployed guest VM (all its replicas). Per-slot replica state
// is owned by the internal wiring and read through the slot-addressed
// accessors (Replica, Replicas, HostIndexes) in replica.go.
type Guest struct {
	ID string
	// Replaced counts replica replacements performed on this guest.
	Replaced int

	// Baseline mode:
	Baseline *vmm.BaselineRuntime

	// Online-lifecycle state (StopWatch mode). replicas is the single
	// source of truth for per-slot wiring.
	factory  func() guest.App
	boots    []sim.Time
	journal  *vmm.Journal
	replicas []*replicaWiring
	// view is the guest's group-view number, bumped on every group
	// reconfiguration (deploy, replica replacement, failure reconfig) and
	// installed into every live replica's device model in the same instant.
	view uint64

	// Baseline-mode placement and app (no replica wiring exists).
	baselineHost int
	baselineApp  guest.App
}

// replicaWiring is one replica's full fabric wiring. Peer lists are read
// through the struct at send time, so replica replacement can rewire a
// running guest by mutating them. The wiring itself implements the VMM's
// sink interfaces (proposal multicast, pacing fan-out, egress tunnelling),
// so wiring a replica installs plain pointers instead of per-replica
// closures.
type replicaWiring struct {
	c        *Cluster
	gid      string
	hostIdx  int
	hostName string
	dom0     netsim.Addr
	rt       *vmm.Runtime
	nd       *vmm.NetDevice
	app      guest.App
	ec       *vmm.EpochCoordinator
	propSrc  netsim.Addr
	psnd     *multicast.Sender
	peers    []netsim.Addr
}

var (
	_ vmm.ProposalSink = (*replicaWiring)(nil)
	_ vmm.PaceSink     = (*replicaWiring)(nil)
	_ vmm.SendSink     = (*replicaWiring)(nil)
)

// SendProposal implements vmm.ProposalSink: reliable multicast of this
// replica's delivery-time proposal to the peer device models.
func (w *replicaWiring) SendProposal(view, seq uint64, v vtime.Virtual) {
	w.psnd.Multicast("swprop", 64, netsim.PacketBody{
		Kind: netsim.BodyProp, GuestID: w.gid, Origin: w.hostName, View: view, Seq: seq, Virt: v,
	})
}

// PaceReport implements vmm.PaceSink: unicast progress beacons to the peer
// Dom0s (periodic, loss-tolerant). The beacon rides in the typed packet
// body — nothing is boxed per tick.
func (w *replicaWiring) PaceReport(v vtime.Virtual) {
	for _, dst := range w.peers {
		p := w.c.net.AllocPacket(w.dom0, dst, 48, "swpace", nil)
		p.Body = netsim.PacketBody{Kind: netsim.BodyPace, GuestID: w.gid, Origin: w.hostName, Virt: v}
		w.c.net.Send(p)
	}
}

// GuestSend implements vmm.SendSink: egress tunnelling of guest outputs
// (Sec. VI), deferred by the Dom0 output-path delay.
func (w *replicaWiring) GuestSend(a guest.IOAction) {
	c := w.c
	host := c.hosts[w.hostIdx]
	hn := c.hostNodes[w.hostIdx]
	ow := hn.allocOut()
	ow.src, ow.dst, ow.size, ow.kind = w.dom0, c.egress.Addr(), a.Size, "egress:tunnel"
	ow.body = netsim.PacketBody{
		Kind: netsim.BodyEgress, GuestID: w.gid, Origin: w.hostName, Seq: a.Seq,
		OrigDst: a.Dst, Size: a.Size, Data: a.Data,
	}
	host.Loop().AfterTimer(hostIODelay(host), "sw:tunnel", outTimer, nil, ow, 0)
}

// CheckLockstep verifies all replicas produced identical outputs.
func (g *Guest) CheckLockstep() error {
	if len(g.replicas) < 2 {
		return nil
	}
	d0 := g.replicas[0].rt.VM().OutputDigest()
	n0 := g.replicas[0].rt.VM().OutputCount()
	for i, w := range g.replicas[1:] {
		if w.rt.VM().OutputDigest() != d0 || w.rt.VM().OutputCount() != n0 {
			return fmt.Errorf("%w: guest %s replica %d diverged (outputs %d vs %d)",
				ErrCluster, g.ID, i+1, w.rt.VM().OutputCount(), n0)
		}
	}
	return nil
}

// Divergences sums the runtime divergence counters across replicas.
func (g *Guest) Divergences() int {
	n := 0
	for _, w := range g.replicas {
		n += w.rt.Stats().Divergences
	}
	return n
}

// hostNode is a host's Dom0 fabric endpoint: it demultiplexes ingress
// streams, peer proposals, pacing reports and egress tunnelling for every
// guest replica resident on the host.
type hostNode struct {
	c    *Cluster
	host *vmm.Host
	addr netsim.Addr
	// shard indexes the host's fabric shard: which per-shard queue its
	// delivery events may append to (stalls, reconcile records).
	shard int

	mrx *multicast.Receiver

	// Per-guest wiring.
	netdevs  map[string]*vmm.NetDevice
	runtimes map[string]*vmm.Runtime
	epochs   map[string]*vmm.EpochCoordinator

	// freeOut pools deferred-send work items (the Dom0 output-path delay
	// between a guest send and the fabric transmit) so per-output closures
	// are not allocated in steady state. Per host node: only this host's
	// shard loop touches it.
	freeOut []*outWork
}

// New creates a cluster.
func New(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Hosts <= 0 {
		return nil, fmt.Errorf("%w: %d hosts", ErrCluster, cfg.Hosts)
	}
	if cfg.Mode != ModeStopWatch && cfg.Mode != ModeBaseline {
		return nil, fmt.Errorf("%w: mode %d", ErrCluster, cfg.Mode)
	}
	if cfg.Replicas == 0 {
		cfg.Replicas = 3
	}
	if cfg.Replicas < 1 || cfg.Replicas%2 == 0 {
		return nil, fmt.Errorf("%w: replicas %d must be odd", ErrCluster, cfg.Replicas)
	}
	if err := cfg.VMM.Validate(); err != nil {
		return nil, err
	}
	if cfg.Shards == 0 {
		cfg.Shards = 1
	}
	if cfg.Shards < 0 {
		return nil, fmt.Errorf("%w: %d shards", ErrCluster, cfg.Shards)
	}
	if cfg.Shards > cfg.Hosts {
		cfg.Shards = cfg.Hosts // extra shards would only idle
	}
	// The control loop and the shard loops exist for every shard count —
	// including 1 — so the coordinator's window grid, and with it the
	// schedule, is a pure function of the topology, never of Shards.
	loop := sim.NewLoop()
	src := sim.NewSource(cfg.Seed)
	net, err := netsim.New(loop, src.Stream("fabric"), cfg.CloudLink)
	if err != nil {
		return nil, err
	}
	shardLoops := make([]*sim.Loop, cfg.Shards)
	for k := range shardLoops {
		shardLoops[k] = sim.NewLoop()
	}
	if err := net.SetShards(shardLoops); err != nil {
		return nil, err
	}
	c := &Cluster{
		cfg:           cfg,
		loop:          loop,
		shardLoops:    shardLoops,
		src:           src,
		net:           net,
		guests:        make(map[string]*Guest),
		hostIdxByName: make(map[string]int, cfg.Hosts),
		stallQ:        make([][]stallRec, cfg.Shards),
	}
	c.rcl.q = make([][]rclRec, cfg.Shards)
	c.coord = sim.NewCoordinator(loop, shardLoops, net.Lookahead, net.Exchange, c.onBarrier)
	c.coord.SetParallel(cfg.Shards > 1)
	for i := 0; i < cfg.Hosts; i++ {
		name := fmt.Sprintf("host%d", i)
		drift := 0.0
		if len(cfg.HostDrift) > 0 {
			drift = cfg.HostDrift[i%len(cfg.HostDrift)]
		}
		var offset sim.Time
		if len(cfg.HostOffset) > 0 {
			offset = cfg.HostOffset[i%len(cfg.HostOffset)]
		}
		hostLoop := shardLoops[i%cfg.Shards]
		h, err := vmm.NewHost(name, hostLoop, src.Stream("host:"+name), sim.NewClock(offset, drift), cfg.VMM)
		if err != nil {
			return nil, err
		}
		c.hosts = append(c.hosts, h)
		c.hostIdxByName[name] = i
		hn := &hostNode{
			c:        c,
			host:     h,
			addr:     netsim.Addr("dom0:" + name),
			shard:    i % cfg.Shards,
			netdevs:  make(map[string]*vmm.NetDevice),
			runtimes: make(map[string]*vmm.Runtime),
			epochs:   make(map[string]*vmm.EpochCoordinator),
		}
		if err := net.AssignShard(hn.addr, i%cfg.Shards); err != nil {
			return nil, err
		}
		// The host's reconcile source endpoint lives on its shard; its links
		// (and their seeded streams) are created lazily on first use, so the
		// address costs nothing until a machine actually crashes.
		if err := net.AssignShard(rclAddr(name), i%cfg.Shards); err != nil {
			return nil, err
		}
		mrx, err := multicast.NewReceiver(net, hostLoop, multicast.ReceiverConfig{
			Addr:   hn.addr,
			OnData: hn.onMulticastData,
		})
		if err != nil {
			return nil, err
		}
		hn.mrx = mrx
		if err := net.Attach(&netsim.FuncNode{Addr: hn.addr, Fn: hn.deliver}); err != nil {
			return nil, err
		}
		c.hostNodes = append(c.hostNodes, hn)
	}
	if cfg.Mode == ModeStopWatch {
		// Gateways (and clients) live on shard 0: their addresses default
		// there, and their timers must run on the loop that delivers to them.
		ing, err := gateway.NewIngress(net, shardLoops[0], "ingress")
		if err != nil {
			return nil, err
		}
		c.ingress = ing
		eg, err := gateway.NewEgress(net, shardLoops[0], "egress", cfg.Replicas)
		if err != nil {
			return nil, err
		}
		c.egress = eg
		// Each replica's output packets are "tunneled ... to the egress
		// node over TCP" (Sec. VI): a reliable FIFO leg. Model it as the
		// cloud link without loss — TCP's retransmission is abstracted
		// away on this hop.
		tunnel := cfg.CloudLink
		tunnel.LossProb = 0
		for _, hn := range c.hostNodes {
			if err := net.SetLink(hn.addr, eg.Addr(), tunnel); err != nil {
				return nil, err
			}
		}
	}
	return c, nil
}

// Loop exposes the control loop: drivers and control-plane code schedule
// here, and its events run at coordinator barriers.
func (c *Cluster) Loop() *sim.Loop { return c.loop }

// Coordinator exposes the conservative-lookahead coordinator driving the
// control loop and the fabric shards (benchmarks read FiredTotal; tests
// toggle SetParallel).
func (c *Cluster) Coordinator() *sim.Coordinator { return c.coord }

// Shards returns the fabric shard count.
func (c *Cluster) Shards() int { return len(c.shardLoops) }

// Net exposes the fabric.
func (c *Cluster) Net() *netsim.Network { return c.net }

// Source exposes the seeded stream factory.
func (c *Cluster) Source() *sim.Source { return c.src }

// Host returns machine i.
func (c *Cluster) Host(i int) *vmm.Host { return c.hosts[i] }

// Hosts returns the machine count.
func (c *Cluster) Hosts() int { return len(c.hosts) }

// Egress returns the egress node (nil in baseline mode).
func (c *Cluster) Egress() *gateway.Egress { return c.egress }

// Ingress returns the ingress node (nil in baseline mode).
func (c *Cluster) Ingress() *gateway.Ingress { return c.ingress }

// StallDeadline returns the armed per-sequence proposal deadline (0 when
// no stall detector is set) — what admission control sizes its I/O-tail
// budget against.
func (c *Cluster) StallDeadline() sim.Time { return c.stallDeadline }

// Guest returns a deployed guest by id.
func (c *Cluster) Guest(id string) (*Guest, bool) {
	g, ok := c.guests[id]
	return g, ok
}

// Deploy places a guest. Under StopWatch, hostIdx must list Replicas
// distinct hosts; under baseline exactly one. factory builds one app
// instance per replica (replicas must not share mutable state).
func (c *Cluster) Deploy(id string, hostIdx []int, factory func() guest.App) (*Guest, error) {
	if id == "" || factory == nil {
		return nil, fmt.Errorf("%w: Deploy needs id and app factory", ErrCluster)
	}
	if _, dup := c.guests[id]; dup {
		return nil, fmt.Errorf("%w: guest %q already deployed", ErrCluster, id)
	}
	for _, i := range hostIdx {
		if i < 0 || i >= len(c.hosts) {
			return nil, fmt.Errorf("%w: host index %d out of range", ErrCluster, i)
		}
		if c.hosts[i].Failed() {
			return nil, fmt.Errorf("%w: host %d is failed — a replica placed there would be born dead", ErrCluster, i)
		}
	}
	var g *Guest
	var err error
	if c.cfg.Mode == ModeBaseline {
		g, err = c.deployBaseline(id, hostIdx, factory)
	} else {
		g, err = c.deployStopWatch(id, hostIdx, factory)
	}
	if err != nil {
		return nil, err
	}
	// Existing clients reach online-admitted guests over the same client
	// link as guests deployed before them.
	for _, cl := range c.clients {
		if err := c.net.SetDuplexLink(cl, gateway.ServiceAddr(id), c.cfg.ClientLink); err != nil {
			return nil, err
		}
	}
	return g, nil
}

func (c *Cluster) deployBaseline(id string, hostIdx []int, factory func() guest.App) (*Guest, error) {
	if len(hostIdx) != 1 {
		return nil, fmt.Errorf("%w: baseline guest needs exactly 1 host, got %d", ErrCluster, len(hostIdx))
	}
	app := factory()
	h := c.hosts[hostIdx[0]]
	hn := c.hostNodes[hostIdx[0]]
	rt, err := vmm.NewBaselineRuntime(h, id, app)
	if err != nil {
		return nil, err
	}
	svc := gateway.ServiceAddr(id)
	// The baseline guest's service endpoint feeds its runtime directly, so
	// it must live on the runtime's host shard.
	if err := c.net.AssignShard(svc, hostIdx[0]%len(c.shardLoops)); err != nil {
		return nil, err
	}
	rt.OnSend = vmm.SendSinkFunc(func(a guest.IOAction) {
		w := hn.allocOut()
		w.src, w.dst, w.size, w.kind, w.payload = svc, a.Dst, a.Size, "guest:data", a.Data
		h.Loop().AfterTimer(hostIODelay(h), "base:out", outTimer, nil, w, 0)
	})
	if err := c.net.Attach(&netsim.FuncNode{Addr: svc, Fn: func(p *netsim.Packet) {
		rt.HandleInbound(guest.Payload{Src: p.Src, Size: p.Size, Data: p.Payload})
	}}); err != nil {
		return nil, err
	}
	g := &Guest{ID: id, Baseline: rt, baselineHost: hostIdx[0], baselineApp: app}
	c.guests[id] = g
	if c.started {
		c.startGuest(g)
	}
	return g, nil
}

// hostIODelay approximates the Dom0 output-path processing cost for
// baseline sends: the same base delay as inbound processing, without load
// jitter (outbound DMA is cheap).
func hostIODelay(h *vmm.Host) sim.Time {
	return h.Config().IOBaseDelay
}

func (c *Cluster) deployStopWatch(id string, hostIdx []int, factory func() guest.App) (*Guest, error) {
	if len(hostIdx) != c.cfg.Replicas {
		return nil, fmt.Errorf("%w: guest needs %d replica hosts, got %d", ErrCluster, c.cfg.Replicas, len(hostIdx))
	}
	for k, i := range hostIdx {
		for _, j := range hostIdx[:k] {
			if i == j {
				return nil, fmt.Errorf("%w: replica hosts must be distinct", ErrCluster)
			}
		}
	}
	// Boot times: each replica host's clock read now; the virtual clock
	// start is their median (Sec. IV-A).
	boots := make([]sim.Time, len(hostIdx))
	for k, i := range hostIdx {
		boots[k] = c.hosts[i].Clock().Read(c.loop.Now())
	}
	g := &Guest{
		ID:       id,
		factory:  factory,
		boots:    boots,
		journal:  vmm.NewJournal(),
		replicas: make([]*replicaWiring, len(hostIdx)),
	}
	for k, i := range hostIdx {
		if err := c.wireReplica(g, k, i, nil); err != nil {
			return nil, err
		}
	}
	if err := c.ingress.RegisterGuest(id, g.dom0s()); err != nil {
		return nil, err
	}
	if err := c.reconcileGroups(g); err != nil {
		// Unwind so the id stays deployable: unlike its refreshPeers
		// predecessor, reconcileGroups is fallible.
		for _, w := range g.replicas {
			c.releaseReplicaWiring(id, w)
		}
		_ = c.ingress.UnregisterGuest(id)
		return nil, err
	}
	c.guests[id] = g
	c.instrumentGuestJournal(g)
	if c.started {
		c.startGuest(g)
	}
	return g, nil
}

// wireReplica builds and wires replica slot k of guest g on the given
// host. With rt == nil a fresh runtime is created (initial deployment);
// otherwise the caller supplies a reconstructed replacement runtime. Peer
// lists are left to refreshPeers.
func (c *Cluster) wireReplica(g *Guest, k, hostIdx int, rt *vmm.Runtime) error {
	hn := c.hostNodes[hostIdx]
	id := g.ID
	var app guest.App
	if rt == nil {
		app = g.factory()
		var err error
		rt, err = vmm.NewRuntime(c.hosts[hostIdx], id, app, g.boots)
		if err != nil {
			return err
		}
	} else {
		app = rt.VM().App()
	}
	nd, err := vmm.NewNetDevice(rt, c.cfg.Replicas)
	if err != nil {
		return err
	}
	if c.propLatency != nil {
		h := c.propLatency.Shard(hostIdx % len(c.shardLoops))
		nd.LatencyHist = &h
	}
	w := &replicaWiring{
		c:        c,
		gid:      id,
		hostIdx:  hostIdx,
		hostName: c.hosts[hostIdx].Name(),
		dom0:     hn.addr,
		rt:       rt,
		nd:       nd,
		app:      app,
		propSrc:  netsim.Addr("prop:" + c.hosts[hostIdx].Name() + "/" + id),
	}
	// Proposal exchange: reliable multicast to peer Dom0s. The group is a
	// placeholder until refreshPeers fills in the real peer set (which can
	// change over the guest's life as replicas are re-homed); a 1-replica
	// "group" has no peers and fails here as it always has.
	var placeholder []netsim.Addr
	if c.cfg.Replicas > 1 {
		// Capacity for the real peer set: SetGroup reuses this backing when
		// reconciliation installs the actual peers.
		placeholder = append(make([]netsim.Addr, 0, c.cfg.Replicas-1), hn.addr)
	}
	// The proposal stream's sender state (SPM timers, NAK consumption) and
	// source address live on the replica's host shard.
	if err := c.net.AssignShard(w.propSrc, hostIdx%len(c.shardLoops)); err != nil {
		return err
	}
	psnd, err := multicast.NewSender(c.net, c.hosts[hostIdx].Loop(), multicast.SenderConfig{Src: w.propSrc, Group: placeholder})
	if err != nil {
		return err
	}
	w.psnd = psnd
	// Attach replaces any stale node from an earlier tenancy of this host
	// (guest ids are unique, so no live holder can exist). The sender is
	// its own fabric node (NAK consumption).
	if err := c.net.Attach(psnd); err != nil {
		return err
	}
	// Proposal exchange, journal, pacing and egress tunnelling all wire to
	// the replicaWiring itself (see its sink methods above) — no closures.
	nd.SendProposal = w
	// Journal every resolved delivery — the determinism log replica
	// replacement replays (identical at every replica; first write wins).
	nd.OnResolve = g.journal
	rt.OnPace = w
	rt.OnSend = w
	// Checkpointed journal (replay bounded by the checkpoint interval
	// instead of the guest's lifetime) — on when configured and the app
	// can snapshot.
	if c.cfg.VMM.CheckpointInstr > 0 && rt.VM().CanSnapshot() {
		if err := rt.EnableCheckpoints(g.journal, c.cfg.VMM.CheckpointInstr); err != nil {
			return err
		}
	}
	// Optional Sec. IV-A epoch re-synchronization.
	if c.cfg.VMM.EpochInstr > 0 {
		ec, err := vmm.NewEpochCoordinator(rt, c.cfg.VMM.EpochInstr, c.cfg.Replicas)
		if err != nil {
			return err
		}
		ec.SendSample = func(epoch int64, s vtime.EpochSample) {
			for _, dst := range w.peers {
				p := c.net.AllocPacket(w.dom0, dst, 56, "swepoch", nil)
				p.Body = netsim.PacketBody{Kind: netsim.BodyEpoch, GuestID: id, Origin: w.hostName, Epoch: epoch, Sample: s}
				c.net.Send(p)
			}
		}
		// Journal each applied adjustment's star so replacement replay
		// re-fits the slope at the same boundaries (first write wins).
		ec.OnAdjust = g.journal.RecordEpochStar
		w.ec = ec
		hn.epochs[id] = ec
	}
	hn.netdevs[id] = nd
	hn.runtimes[id] = rt
	g.replicas[k] = w
	c.armStallDetector(id, w)
	return nil
}

// dom0s returns the guest's replica Dom0 addresses in slot order.
func (g *Guest) dom0s() []netsim.Addr {
	out := make([]netsim.Addr, len(g.replicas))
	for k, w := range g.replicas {
		out[k] = w.dom0
	}
	return out
}

// reconcileGroups recomputes guest g's whole group configuration from the
// current liveness of its replicas' machines (vmm.Host.Failed): every live
// replica's pacing peer list, proposal multicast group and device-model
// live view (under a freshly bumped view number, installed in all live
// members within this one simulated instant), plus the ingress replication
// group and the egress's per-guest live copy count (so a degraded guest's
// output forwards at its live group's median copy — the sole copy for a
// single survivor). Deployment, replica replacement and dead-machine
// reconfiguration all go through it, so a replacement that overlaps an
// unevacuated failure cannot resurrect a dead member into the group.
func (c *Cluster) reconcileGroups(g *Guest) error {
	// The live-set slices are cluster-owned scratch: every consumer below
	// (live views, multicast groups, ingress replication) copies what it
	// keeps, so reconciliation allocates nothing in steady state.
	liveNames := c.scratchNames[:0]
	liveDom0s := c.scratchAddrs[:0]
	var deadNames []string
	for _, w := range g.replicas {
		if c.hosts[w.hostIdx].Failed() {
			deadNames = append(deadNames, w.hostName)
			continue
		}
		liveNames = append(liveNames, w.hostName)
		liveDom0s = append(liveDom0s, w.dom0)
	}
	c.scratchNames = liveNames[:0]
	c.scratchAddrs = liveDom0s[:0]
	if len(liveDom0s) == 0 {
		return fmt.Errorf("%w: guest %q has no live replicas", ErrCluster, g.ID)
	}
	g.view++
	for _, w := range g.replicas {
		if c.hosts[w.hostIdx].Failed() {
			continue
		}
		peers := w.peers[:0]
		for _, a := range liveDom0s {
			if a != w.dom0 {
				peers = append(peers, a)
			}
		}
		w.peers = peers
		// An empty peer set (sole survivor) silences the sender — its SPM
		// heartbeats must not keep reaching dead or repaired machines.
		_ = w.psnd.SetGroup(peers)
		for _, d := range deadNames {
			w.rt.DropPeer(d)
		}
		// Install the live view last: it re-proposes pending sequences
		// through the freshly repointed multicast group.
		w.nd.SetLiveReplicas(g.view, liveNames)
		// The epoch barrier completes against the same live set — a shrink
		// unwedges survivors waiting on a dead member's sample.
		if w.ec != nil {
			w.ec.SetGroup(liveNames)
		}
	}
	if err := c.egress.SetLiveReplicas(g.ID, len(liveDom0s)); err != nil {
		return err
	}
	return c.ingress.UpdateGroup(g.ID, liveDom0s)
}

// startGuest boots one guest's runtimes.
func (c *Cluster) startGuest(g *Guest) {
	if g.Baseline != nil {
		g.Baseline.Start()
	}
	for _, w := range g.replicas {
		w.rt.Start()
	}
}

// Start boots all deployed guests, in guest-id order — iteration order is
// observable (co-hosted runtimes draw from their host's seeded stream as
// they boot), and a map walk here would make per-run timing diverge.
// Guests deployed after Start (online admissions) boot at deployment time.
func (c *Cluster) Start() {
	c.started = true
	for _, id := range c.GuestIDs() {
		c.startGuest(c.guests[id])
	}
}

// Started reports whether the cluster has been started.
func (c *Cluster) Started() bool { return c.started }

// Run advances the simulation to the given time: the coordinator interleaves
// conservative-lookahead windows on the shard loops with control-loop
// barriers, sequentially or on one goroutine per shard (Coordinator).
func (c *Cluster) Run(until sim.Time) error {
	return c.coord.RunUntil(until)
}

// Stop halts all guests (drains idle spinning so the loop can quiesce), in
// guest-id order for the same determinism reason as Start.
func (c *Cluster) Stop() {
	for _, id := range c.GuestIDs() {
		g := c.guests[id]
		if g.Baseline != nil {
			g.Baseline.Stop()
		}
		for _, w := range g.replicas {
			w.rt.Stop()
		}
	}
}

// NewClient attaches a transport client with the configured client link to
// every deployed guest's service address.
func (c *Cluster) NewClient(addr netsim.Addr) (*transport.Client, error) {
	cl, err := transport.NewClient(c.net, c.shardLoops[0], addr)
	if err != nil {
		return nil, err
	}
	for id := range c.guests {
		if err := c.net.SetDuplexLink(addr, gateway.ServiceAddr(id), c.cfg.ClientLink); err != nil {
			return nil, err
		}
	}
	c.clients = append(c.clients, addr)
	return cl, nil
}

// ServiceAddr re-exports the guest public address helper.
func ServiceAddr(guestID string) netsim.Addr { return gateway.ServiceAddr(guestID) }

// deliver handles unicast packets to the Dom0 node.
func (hn *hostNode) deliver(p *netsim.Packet) {
	if hn.host.Failed() {
		return // a dead machine's fabric endpoint is silent
	}
	if hn.mrx.Handle(p) {
		return
	}
	switch p.Kind {
	case "swpace":
		if rt, ok := hn.runtimes[p.Body.GuestID]; ok {
			rt.OnPeerVirt(p.Body.Origin, p.Body.Virt)
		}
	case "swrcl":
		hn.handleReconcile(p)
	case "swrclack":
		hn.handleReconcileAck(p)
	case "swepoch":
		if ec, ok := hn.epochs[p.Body.GuestID]; ok {
			ec.OnPeerSample(p.Body.Origin, p.Body.Epoch, p.Body.Sample)
		}
	case "broadcast":
		// Ambient subnet noise: costs Dom0 a little processing.
		hn.host.Loop().AfterTimer(0, "bcast:absorb", absorbTimer, nil, nil, 0)
	}
}

// onMulticastData dispatches reliable-multicast bodies: ingress streams
// ("ingress/<guest>") and peer proposals ("prop:<host>/<guest>").
func (hn *hostNode) onMulticastData(src netsim.Addr, seq uint64, kind string, body netsim.PacketBody) {
	if hn.host.Failed() {
		return
	}
	switch kind {
	case "swin":
		gid := guestIDFromIngressSrc(string(src))
		if nd, ok := hn.netdevs[gid]; ok {
			nd.HandleInbound(seq, guest.Payload{Src: body.ClientSrc, Size: body.Size, Data: body.Data})
		}
	case "swprop":
		if nd, ok := hn.netdevs[body.GuestID]; ok {
			nd.HandlePeerProposal(body.Origin, body.View, body.Seq, body.Virt)
		}
	}
}

// guestIDFromIngressSrc extracts the guest id from "ingress/<guest>".
func guestIDFromIngressSrc(src string) string {
	for i := 0; i < len(src); i++ {
		if src[i] == '/' {
			return src[i+1:]
		}
	}
	return ""
}
