package placement

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestQuasigroupProperties(t *testing.T) {
	for _, order := range []int{1, 3, 5, 7, 9, 21, 101} {
		q, err := NewQuasigroup(order)
		if err != nil {
			t.Fatal(err)
		}
		for a := 0; a < order; a++ {
			// Idempotent.
			if q.Op(a, a) != a {
				t.Fatalf("order %d: %d∘%d = %d, want idempotent", order, a, a, q.Op(a, a))
			}
			rowSeen := make(map[int]bool, order)
			colSeen := make(map[int]bool, order)
			for b := 0; b < order; b++ {
				// Commutative.
				if q.Op(a, b) != q.Op(b, a) {
					t.Fatalf("order %d: not commutative at (%d,%d)", order, a, b)
				}
				// Latin square: each element once per row and column.
				rowSeen[q.Op(a, b)] = true
				colSeen[q.Op(b, a)] = true
			}
			if len(rowSeen) != order || len(colSeen) != order {
				t.Fatalf("order %d: row/col %d not a permutation", order, a)
			}
		}
	}
	if _, err := NewQuasigroup(4); !errors.Is(err, ErrPlacement) {
		t.Fatal("even order should fail")
	}
	if _, err := NewQuasigroup(0); !errors.Is(err, ErrPlacement) {
		t.Fatal("zero order should fail")
	}
}

// bruteMaxPacking exhaustively computes the max edge-disjoint triangle
// packing of K_n for tiny n.
func bruteMaxPacking(n int) int {
	var tris []Triangle
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			for c := b + 1; c < n; c++ {
				tris = append(tris, Triangle{a, b, c})
			}
		}
	}
	best := 0
	var rec func(i int, used map[[2]int]bool, count int)
	rec = func(i int, used map[[2]int]bool, count int) {
		if count > best {
			best = count
		}
		if i >= len(tris) {
			return
		}
		// Prune: even taking every remaining triangle can't beat best.
		if count+(len(tris)-i) <= best {
			return
		}
		rec(i+1, used, count)
		tr := tris[i]
		es := tr.edges()
		for _, e := range es {
			if used[e] {
				return
			}
		}
		for _, e := range es {
			used[e] = true
		}
		rec(i+1, used, count+1)
		for _, e := range es {
			delete(used, e)
		}
	}
	rec(0, map[[2]int]bool{}, 0)
	return best
}

func TestTheorem1MaxMatchesBruteForce(t *testing.T) {
	for n := 3; n <= 8; n++ {
		want := bruteMaxPacking(n)
		got, err := Theorem1Max(n)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("Theorem1Max(%d) = %d, brute force = %d", n, got, want)
		}
	}
}

func TestTheorem1MaxKnownValues(t *testing.T) {
	// Steiner triple systems exist for n ≡ 1,3 (mod 6): k = n(n-1)/6.
	cases := []struct{ n, want int }{
		{3, 1}, {7, 7}, {9, 12}, {13, 26}, {15, 35},
		{4, 1}, {6, 4}, {0, 0}, {2, 0},
	}
	for _, c := range cases {
		got, err := Theorem1Max(c.n)
		if err != nil {
			t.Fatal(err)
		}
		if got != c.want {
			t.Errorf("Theorem1Max(%d) = %d, want %d", c.n, got, c.want)
		}
	}
	if _, err := Theorem1Max(-1); !errors.Is(err, ErrPlacement) {
		t.Fatal("negative n should fail")
	}
}

func TestTheorem2AllResiduesAndVerify(t *testing.T) {
	for _, n := range []int{9, 15, 21, 27, 33} {
		maxC := (n - 1) / 2
		for c := 1; c <= maxC; c++ {
			p, err := PlaceTheorem2(n, c)
			if err != nil {
				t.Fatalf("PlaceTheorem2(%d,%d): %v", n, c, err)
			}
			if err := p.Verify(); err != nil {
				t.Fatalf("verify(%d,%d): %v", n, c, err)
			}
			want, err := Theorem2Guests(n, c)
			if err != nil {
				t.Fatal(err)
			}
			if p.Guests() != want {
				t.Fatalf("n=%d c=%d: %d guests, want %d", n, c, p.Guests(), want)
			}
			// Θ(cn) utilization: k = cn/3 (±) passes isolation once c > 3.
			if c >= 4 && p.Guests() <= n {
				t.Fatalf("n=%d c=%d: %d guests not better than isolation", n, c, p.Guests())
			}
		}
	}
}

func TestTheorem2Errors(t *testing.T) {
	if _, err := PlaceTheorem2(10, 2); !errors.Is(err, ErrPlacement) {
		t.Fatal("n not ≡ 3 mod 6 should fail")
	}
	if _, err := PlaceTheorem2(9, 0); !errors.Is(err, ErrPlacement) {
		t.Fatal("c=0 should fail")
	}
	if _, err := PlaceTheorem2(9, 5); !errors.Is(err, ErrPlacement) {
		t.Fatal("c > (n-1)/2 should fail")
	}
	if _, err := Theorem2Guests(8, 1); !errors.Is(err, ErrPlacement) {
		t.Fatal("Theorem2Guests bad n should fail")
	}
}

func TestGreedyPackValidAndDecent(t *testing.T) {
	for _, n := range []int{3, 4, 5, 6, 7, 9, 10, 12, 15, 20, 30} {
		p, err := GreedyPack(n, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Verify(); err != nil {
			t.Fatalf("greedy verify n=%d: %v", n, err)
		}
		max, err := Theorem1Max(n)
		if err != nil {
			t.Fatal(err)
		}
		if max > 0 && p.Guests() < max/2 {
			t.Fatalf("greedy n=%d packed %d < half of max %d", n, p.Guests(), max)
		}
	}
}

func TestGreedyPackRespectsCapacity(t *testing.T) {
	p, err := GreedyPack(12, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	load := make([]int, 12)
	for _, tr := range p.Triangles {
		for _, v := range tr {
			load[v]++
		}
	}
	for i, l := range load {
		if l > 2 {
			t.Fatalf("machine %d over capacity: %d", i, l)
		}
	}
}

func TestVerifyCatchesViolations(t *testing.T) {
	bad := &Placement{N: 5, Triangles: []Triangle{{0, 1, 2}, {0, 1, 3}}}
	if err := bad.Verify(); !errors.Is(err, ErrPlacement) {
		t.Fatal("edge reuse not caught")
	}
	bad = &Placement{N: 5, Triangles: []Triangle{{0, 0, 2}}}
	if err := bad.Verify(); !errors.Is(err, ErrPlacement) {
		t.Fatal("degenerate triangle not caught")
	}
	bad = &Placement{N: 3, Triangles: []Triangle{{0, 1, 7}}}
	if err := bad.Verify(); !errors.Is(err, ErrPlacement) {
		t.Fatal("out-of-range vertex not caught")
	}
	bad = &Placement{N: 4, Capacity: 1, Triangles: []Triangle{{0, 1, 2}, {0, 2, 3}}}
	if err := bad.Verify(); !errors.Is(err, ErrPlacement) {
		t.Fatal("capacity violation not caught")
	}
}

func TestUtilizationTable(t *testing.T) {
	rows, err := UtilizationTable([]int{9, 15, 21}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows: %d", len(rows))
	}
	for _, r := range rows {
		if r.Theorem2 <= r.Isolated {
			t.Fatalf("n=%d: Theorem2 %d should beat isolation %d", r.N, r.Theorem2, r.Isolated)
		}
		if r.Theorem2 > r.Theorem1Bound {
			t.Fatalf("n=%d: Theorem2 %d exceeds Theorem1 bound %d", r.N, r.Theorem2, r.Theorem1Bound)
		}
		if r.UtilizationGain <= 1 {
			t.Fatalf("n=%d: gain %v", r.N, r.UtilizationGain)
		}
	}
}

// Property: Theorem-2 placements for random valid (n,c) are always valid
// and match the formula; quasigroup ops stay in range.
func TestTheorem2Property(t *testing.T) {
	f := func(nRaw, cRaw uint8) bool {
		v := int(nRaw%10) + 1 // v in 1..10 → n in 9..63
		n := 6*v + 3
		maxC := (n - 1) / 2
		c := int(cRaw)%maxC + 1
		p, err := PlaceTheorem2(n, c)
		if err != nil {
			return false
		}
		if p.Verify() != nil {
			return false
		}
		want, err := Theorem2Guests(n, c)
		if err != nil {
			return false
		}
		return p.Guests() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTriangleNormalizeAndEdges(t *testing.T) {
	tr := Triangle{5, 1, 3}
	n := tr.normalize()
	if n != (Triangle{1, 3, 5}) {
		t.Fatalf("normalize = %v", n)
	}
	es := tr.edges()
	want := [3][2]int{{1, 3}, {1, 5}, {3, 5}}
	if es != want {
		t.Fatalf("edges = %v", es)
	}
}
