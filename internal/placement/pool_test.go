package placement

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
)

func TestPoolAdmitUntilFull(t *testing.T) {
	// Admitting greedily must stay within Theorem 1's bound and match the
	// offline greedy packer's order of magnitude.
	for _, tc := range []struct{ n, c int }{{9, 4}, {15, 7}, {20, 5}, {21, 10}} {
		p, err := NewPool(tc.n, tc.c)
		if err != nil {
			t.Fatal(err)
		}
		admitted := 0
		for {
			if _, err := p.Admit(fmt.Sprintf("g%d", admitted)); err != nil {
				if !errors.Is(err, ErrNoCapacity) {
					t.Fatalf("n=%d c=%d: %v", tc.n, tc.c, err)
				}
				break
			}
			admitted++
			if err := p.Verify(); err != nil {
				t.Fatalf("n=%d c=%d after %d admits: %v", tc.n, tc.c, admitted, err)
			}
		}
		max, err := Theorem1Max(tc.n)
		if err != nil {
			t.Fatal(err)
		}
		if admitted > max {
			t.Fatalf("n=%d: admitted %d > Theorem 1 bound %d", tc.n, admitted, max)
		}
		g, err := GreedyPack(tc.n, tc.c)
		if err != nil {
			t.Fatal(err)
		}
		// The balanced online packer should land within 2x of the offline
		// lexicographic greedy (both are constant-factor approximations).
		if 2*admitted < g.Guests() {
			t.Fatalf("n=%d c=%d: pool admitted %d, offline greedy packs %d", tc.n, tc.c, admitted, g.Guests())
		}
	}
}

// TestPoolChurnPropertyEdgeDisjoint is the admit-until-full then
// evict-and-readmit property test: across random interleavings of arrivals
// and departures, every intermediate state preserves edge-disjointness,
// capacity, and bookkeeping conservation.
func TestPoolChurnPropertyEdgeDisjoint(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		p, err := NewPool(21, 6)
		if err != nil {
			t.Fatal(err)
		}
		resident := map[string]Triangle{}
		next := 0
		for step := 0; step < 400; step++ {
			if len(resident) == 0 || rng.Intn(3) != 0 {
				id := fmt.Sprintf("g%d", next)
				next++
				tri, err := p.Admit(id)
				if errors.Is(err, ErrNoCapacity) {
					// Full: evict someone instead.
					for victim := range resident {
						got, err := p.Release(victim)
						if err != nil {
							t.Fatal(err)
						}
						if got != resident[victim] {
							t.Fatalf("seed %d: released %v, admitted as %v", seed, got, resident[victim])
						}
						delete(resident, victim)
						break
					}
				} else if err != nil {
					t.Fatal(err)
				} else {
					resident[id] = tri
				}
			} else {
				for victim := range resident {
					if _, err := p.Release(victim); err != nil {
						t.Fatal(err)
					}
					delete(resident, victim)
					break
				}
			}
			if err := p.Verify(); err != nil {
				t.Fatalf("seed %d step %d: %v", seed, step, err)
			}
			if p.Guests() != len(resident) {
				t.Fatalf("seed %d: pool says %d guests, model says %d", seed, p.Guests(), len(resident))
			}
		}
		// Drain completely: the pool must return to pristine.
		for id := range resident {
			if _, err := p.Release(id); err != nil {
				t.Fatal(err)
			}
		}
		if p.EdgesUsed() != 0 || p.Guests() != 0 {
			t.Fatalf("seed %d: drained pool still holds %d edges, %d guests", seed, p.EdgesUsed(), p.Guests())
		}
		for i := 0; i < p.N(); i++ {
			if p.Load(i) != 0 {
				t.Fatalf("seed %d: machine %d load %d after drain", seed, i, p.Load(i))
			}
		}
	}
}

func TestPoolRehome(t *testing.T) {
	p, err := NewPool(10, 4)
	if err != nil {
		t.Fatal(err)
	}
	t0, err := p.Admit("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Admit("b"); err != nil {
		t.Fatal(err)
	}
	dead := t0[2]
	nt, host, err := p.Rehome("a", dead)
	if err != nil {
		t.Fatal(err)
	}
	if host == dead || host == t0[0] || host == t0[1] {
		t.Fatalf("rehomed onto %d from triangle %v", host, t0)
	}
	found := false
	for _, v := range nt {
		if v == host {
			found = true
		}
		if v == dead {
			t.Fatalf("dead machine %d still in triangle %v", dead, nt)
		}
	}
	if !found {
		t.Fatalf("new triangle %v missing chosen host %d", nt, host)
	}
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	// The freed edges are reusable: a guest placed across the dead machine
	// and the survivors must admit cleanly.
	if err := p.AdmitTriangle("c", Triangle{t0[0], t0[1] /* survivors' shared edge is taken */, dead}); err == nil {
		t.Fatal("survivors' shared edge should still be held")
	}
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestPoolRehomeExhaustion(t *testing.T) {
	// 3 machines: a failure has nowhere to go.
	p, err := NewPool(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	tri, err := p.Admit("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Rehome("a", tri[0]); !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("want ErrNoCapacity, got %v", err)
	}
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	if tr, _ := p.Triangle("a"); tr != tri {
		t.Fatalf("failed rehome mutated triangle: %v != %v", tr, tri)
	}
}

func TestPoolAdmitTriangleValidation(t *testing.T) {
	p, err := NewPool(8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AdmitTriangle("a", Triangle{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := p.AdmitTriangle("b", Triangle{0, 1, 3}); !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("edge reuse: want ErrNoCapacity, got %v", err)
	}
	if err := p.AdmitTriangle("b", Triangle{1, 1, 3}); err == nil {
		t.Fatal("degenerate triangle admitted")
	}
	if err := p.AdmitTriangle("b", Triangle{5, 6, 9}); err == nil {
		t.Fatal("out-of-range machine admitted")
	}
	if err := p.AdmitTriangle("a", Triangle{3, 4, 5}); err == nil {
		t.Fatal("duplicate id admitted")
	}
	if err := p.AdmitTriangle("b", Triangle{0, 3, 4}); err != nil {
		t.Fatal(err)
	}
	// Machines 0 and 1 are now at capacity 2.
	if err := p.AdmitTriangle("c", Triangle{0, 5, 6}); !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("capacity: want ErrNoCapacity, got %v", err)
	}
}

func TestPoolDrainExcludesMachine(t *testing.T) {
	p, err := NewPool(9, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Admit("a"); err != nil {
		t.Fatal(err)
	}
	// Drain an empty machine: no future triangle may touch it.
	victim := 8
	if p.Load(victim) != 0 {
		t.Fatalf("machine %d unexpectedly loaded", victim)
	}
	if err := p.Drain(victim); err != nil {
		t.Fatal(err)
	}
	if err := p.Drain(victim); !errors.Is(err, ErrDrained) {
		t.Fatalf("double drain: want ErrDrained, got %v", err)
	}
	if !p.Drained(victim) {
		t.Fatal("machine not marked drained")
	}
	for i := 0; ; i++ {
		tri, err := p.Admit(fmt.Sprintf("g%d", i))
		if err != nil {
			if !errors.Is(err, ErrNoFeasibleHost) {
				t.Fatal(err)
			}
			break
		}
		for _, v := range tri {
			if v == victim {
				t.Fatalf("admitted onto drained machine: %v", tri)
			}
		}
		if err := p.Verify(); err != nil {
			t.Fatal(err)
		}
	}
	// Rehome must skip the drained machine too.
	triA, _ := p.Triangle("a")
	if nt, h, err := p.Rehome("a", triA[0]); err == nil {
		if h == victim || nt[0] == victim || nt[1] == victim || nt[2] == victim {
			t.Fatalf("rehomed onto drained machine: %v via %d", nt, h)
		}
	}
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	// Undrain restores the capacity; edges stay conserved throughout.
	if err := p.Undrain(victim); err != nil {
		t.Fatal(err)
	}
	if err := p.Undrain(victim); !errors.Is(err, ErrDrained) {
		t.Fatalf("double undrain: want ErrDrained, got %v", err)
	}
	if p.EdgesUsed() != 3*p.Guests() {
		t.Fatalf("%d edges for %d guests", p.EdgesUsed(), p.Guests())
	}
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestPoolResidents(t *testing.T) {
	p, err := NewPool(7, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AdmitTriangle("b", Triangle{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := p.AdmitTriangle("a", Triangle{0, 3, 4}); err != nil {
		t.Fatal(err)
	}
	got := p.Residents(0)
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Residents(0) = %v, want sorted [a b]", got)
	}
	if r := p.Residents(5); len(r) != 0 {
		t.Fatalf("Residents(5) = %v", r)
	}
}

func TestPoolHostScoresReorderTies(t *testing.T) {
	p, err := NewPool(6, 2)
	if err != nil {
		t.Fatal(err)
	}
	// All loads zero: historical order admits on {0,1,2}.
	tri, err := p.Admit("a")
	if err != nil {
		t.Fatal(err)
	}
	if tri != (Triangle{0, 1, 2}) {
		t.Fatalf("baseline triangle %v", tri)
	}
	if _, err := p.Release("a"); err != nil {
		t.Fatal(err)
	}
	// Score machines 0 and 2 as loaded: the scan now prefers {1,3,4}.
	if err := p.SetHostScore(0, 5); err != nil {
		t.Fatal(err)
	}
	if err := p.SetHostScore(2, 1); err != nil {
		t.Fatal(err)
	}
	tri, err = p.Admit("a")
	if err != nil {
		t.Fatal(err)
	}
	if tri != (Triangle{1, 3, 4}) {
		t.Fatalf("scored triangle %v, want {1 3 4}", tri)
	}
	if p.HostScore(0) != 5 || p.HostScore(1) != 0 {
		t.Fatalf("scores: %v %v", p.HostScore(0), p.HostScore(1))
	}
	// Replica load still dominates score: zero the scores — the still-empty
	// machines win over the loaded ones even when one carries a huge score.
	if err := p.SetHostScore(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := p.SetHostScore(2, 0); err != nil {
		t.Fatal(err)
	}
	if err := p.SetHostScore(5, 100); err != nil {
		t.Fatal(err)
	}
	tri2, err := p.Admit("b")
	if err != nil {
		t.Fatal(err)
	}
	if tri2 != (Triangle{0, 2, 5}) {
		t.Fatalf("load must dominate score: %v, want the empty machines {0 2 5}", tri2)
	}
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	if err := p.SetHostScore(9, 1); err == nil {
		t.Fatal("out-of-range score accepted")
	}
}

func TestPoolHostGateExcludesAndLifts(t *testing.T) {
	p, err := NewPool(5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.SetHostGate(0, true); err != nil {
		t.Fatal(err)
	}
	if !p.Gated(0) || p.GatedCount() != 1 {
		t.Fatalf("gate state: %v %d", p.Gated(0), p.GatedCount())
	}
	tri, err := p.Admit("a")
	if err != nil {
		t.Fatal(err)
	}
	if tri.Contains(0) {
		t.Fatalf("gated machine placed on: %v", tri)
	}
	// A gated machine keeps residents and is not "drained".
	if p.Drained(0) {
		t.Fatal("gate leaked into drain state")
	}
	// Gating too much makes placement infeasible: with 0 and 1 gated only
	// {2,3,4} remains, and "a" already holds edge {2,3}.
	if err := p.SetHostGate(1, true); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Admit("b"); !errors.Is(err, ErrNoFeasibleHost) {
		t.Fatalf("admit with 2 of 5 machines gated: %v", err)
	}
	// Lifting the gates restores feasibility.
	if err := p.SetHostGate(0, false); err != nil {
		t.Fatal(err)
	}
	if err := p.SetHostGate(1, false); err != nil {
		t.Fatal(err)
	}
	if p.GatedCount() != 0 {
		t.Fatalf("gates not lifted: %d", p.GatedCount())
	}
	if _, err := p.Admit("b"); err != nil {
		t.Fatal(err)
	}
	if err := p.Verify(); err != nil {
		t.Fatal(err)
	}
	if err := p.SetHostGate(-1, true); err == nil {
		t.Fatal("out-of-range gate accepted")
	}
}
