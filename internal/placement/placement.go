// Package placement implements Sec. VIII of the paper: placing each guest
// VM's three replicas so that the replicas of any guest coreside with
// nonoverlapping sets of (replicas of) other VMs. Placements are
// edge-disjoint triangle packings of the complete graph K_n:
//
//   - Theorem 1 (via Horsley) gives the maximum number of triangles.
//   - Theorem 2 constructs capacity-constrained placements from Bose's
//     Steiner-triple-system construction over an idempotent commutative
//     quasigroup, achieving Θ(cn) guests on n machines of capacity c.
//
// A greedy packer covers machine counts outside the n ≡ 3 (mod 6) family.
package placement

import (
	"errors"
	"fmt"
)

// ErrPlacement reports invalid placement parameters.
var ErrPlacement = errors.New("placement: invalid")

// Triangle is one guest VM's replica placement: three distinct machines.
type Triangle [3]int

// Contains reports whether machine v is one of the triangle's vertices —
// the residency test lifecycle operations (replacement validation, drain
// and crash evacuation) share.
func (t Triangle) Contains(v int) bool {
	return t[0] == v || t[1] == v || t[2] == v
}

// normalize returns the triangle with sorted vertices.
func (t Triangle) normalize() Triangle {
	a, b, c := t[0], t[1], t[2]
	if a > b {
		a, b = b, a
	}
	if b > c {
		b, c = c, b
	}
	if a > b {
		a, b = b, a
	}
	return Triangle{a, b, c}
}

// edges returns the triangle's three undirected edges, each normalized.
func (t Triangle) edges() [3][2]int {
	n := t.normalize()
	return [3][2]int{{n[0], n[1]}, {n[0], n[2]}, {n[1], n[2]}}
}

// Quasigroup is an idempotent commutative quasigroup over {0..Order-1},
// realized for odd Order as a∘b = (a+b)·(Order+1)/2 mod Order.
type Quasigroup struct {
	Order int
	half  int
}

// NewQuasigroup builds the quasigroup; Order must be odd and positive.
func NewQuasigroup(order int) (*Quasigroup, error) {
	if order <= 0 || order%2 == 0 {
		return nil, fmt.Errorf("%w: quasigroup order %d must be odd", ErrPlacement, order)
	}
	return &Quasigroup{Order: order, half: (order + 1) / 2}, nil
}

// Op returns a∘b.
func (q *Quasigroup) Op(a, b int) int {
	return ((a + b) * q.half) % q.Order
}

// Theorem1Max returns the size of a maximum packing of K_n with pairwise
// edge-disjoint triangles (Horsley, as cited by the paper):
//
//	n odd:  largest k with 3k <= C(n,2) and C(n,2)-3k ∉ {1,2}
//	n even: largest k with 3k <= C(n,2) - n/2
func Theorem1Max(n int) (int, error) {
	if n < 0 {
		return 0, fmt.Errorf("%w: n=%d", ErrPlacement, n)
	}
	if n < 3 {
		return 0, nil
	}
	pairs := n * (n - 1) / 2
	if n%2 == 1 {
		k := pairs / 3
		for k > 0 {
			left := pairs - 3*k
			if left != 1 && left != 2 {
				break
			}
			k--
		}
		return k, nil
	}
	return (pairs - n/2) / 3, nil
}

// bose returns the triangle groups G_0..G_v of the Theorem-2 construction
// for n = 6v+3 nodes, identified as (i, level) → i*3+level? No — the proof
// uses Q×{0,1,2}; we map node (a, ℓ) to index a + ℓ·(2v+1).
func bose(n int) (groups [][]Triangle, v int, err error) {
	if n < 3 || n%6 != 3 {
		return nil, 0, fmt.Errorf("%w: Theorem 2 needs n ≡ 3 (mod 6), got %d", ErrPlacement, n)
	}
	v = (n - 3) / 6
	m := 2*v + 1
	q, err := NewQuasigroup(m)
	if err != nil {
		return nil, 0, err
	}
	node := func(a, level int) int { return a + level*m }

	g0 := make([]Triangle, 0, m)
	for i := 0; i < m; i++ {
		g0 = append(g0, Triangle{node(i, 0), node(i, 1), node(i, 2)})
	}
	groups = append(groups, g0)
	for t := 1; t <= v; t++ {
		gt := make([]Triangle, 0, 3*m)
		for i := 0; i < m; i++ {
			j := (i + t) % m
			for l := 0; l < 3; l++ {
				gt = append(gt, Triangle{node(i, l), node(j, l), node(q.Op(i, j), (l+1)%3)})
			}
		}
		groups = append(groups, gt)
	}
	return groups, v, nil
}

// Placement is a set of guest placements on a cluster.
type Placement struct {
	N         int
	Capacity  int
	Triangles []Triangle
}

// Guests returns the number of simultaneously placeable guest VMs.
func (p *Placement) Guests() int { return len(p.Triangles) }

// Verify checks the StopWatch constraints: triangles use distinct in-range
// vertices, are pairwise edge-disjoint (the nonoverlap constraint), and
// respect the per-machine capacity (if Capacity > 0).
func (p *Placement) Verify() error {
	edges := make(map[[2]int]bool)
	load := make([]int, p.N)
	for _, t := range p.Triangles {
		if t[0] == t[1] || t[1] == t[2] || t[0] == t[2] {
			return fmt.Errorf("%w: degenerate triangle %v", ErrPlacement, t)
		}
		for _, vtx := range t {
			if vtx < 0 || vtx >= p.N {
				return fmt.Errorf("%w: vertex %d out of range", ErrPlacement, vtx)
			}
			load[vtx]++
		}
		for _, e := range t.edges() {
			if edges[e] {
				return fmt.Errorf("%w: edge %v reused — replicas overlap", ErrPlacement, e)
			}
			edges[e] = true
		}
	}
	if p.Capacity > 0 {
		for i, l := range load {
			if l > p.Capacity {
				return fmt.Errorf("%w: machine %d runs %d > capacity %d guests", ErrPlacement, i, l, p.Capacity)
			}
		}
	}
	return nil
}

// Theorem2Guests returns the guest count Theorem 2 guarantees for n
// machines of capacity c (n ≡ 3 mod 6, c <= (n-1)/2):
//
//	c ≡ 0,1 (mod 3): k = c·n/3
//	c ≡ 2   (mod 3): k = (c-1)·n/3 + (n-3)/6
func Theorem2Guests(n, c int) (int, error) {
	if n < 3 || n%6 != 3 {
		return 0, fmt.Errorf("%w: n=%d must be ≡ 3 (mod 6)", ErrPlacement, n)
	}
	if c < 1 || c > (n-1)/2 {
		return 0, fmt.Errorf("%w: capacity c=%d must be in [1, (n-1)/2]", ErrPlacement, c)
	}
	switch c % 3 {
	case 0, 1:
		return c * n / 3, nil
	default:
		return (c-1)*n/3 + (n-3)/6, nil
	}
}

// PlaceTheorem2 constructs the Theorem-2 placement for n machines with
// per-machine capacity c.
func PlaceTheorem2(n, c int) (*Placement, error) {
	want, err := Theorem2Guests(n, c)
	if err != nil {
		return nil, err
	}
	groups, v, err := bose(n)
	if err != nil {
		return nil, err
	}
	m := 2*v + 1
	var tris []Triangle
	switch c % 3 {
	case 0:
		for t := 1; t <= c/3; t++ {
			tris = append(tris, groups[t]...)
		}
	case 1:
		tris = append(tris, groups[0]...)
		for t := 1; t <= (c-1)/3; t++ {
			tris = append(tris, groups[t]...)
		}
	case 2:
		tris = append(tris, groups[0]...)
		for t := 1; t <= (c-2)/3; t++ {
			tris = append(tris, groups[t]...)
		}
		// v = (n-3)/6 triangles from G_v visiting each node at most once:
		// {(a_i,0), (a_{i+v},0), (a_i ∘ a_{i+v}, 1)} for 0 <= i < v.
		q, err := NewQuasigroup(m)
		if err != nil {
			return nil, err
		}
		node := func(a, level int) int { return a + level*m }
		for i := 0; i < v; i++ {
			j := (i + v) % m
			tris = append(tris, Triangle{node(i, 0), node(j, 0), node(q.Op(i, j), 1)})
		}
	}
	p := &Placement{N: n, Capacity: c, Triangles: tris}
	if len(tris) != want {
		return nil, fmt.Errorf("%w: construction yielded %d triangles, want %d", ErrPlacement, len(tris), want)
	}
	if err := p.Verify(); err != nil {
		return nil, err
	}
	return p, nil
}

// GreedyPack packs edge-disjoint triangles into K_n greedily (lexicographic
// scan), respecting capacity c if positive. It works for any n and lands
// within a constant factor of the maximum — the practical fallback for
// cluster sizes outside the Theorem-2 family.
func GreedyPack(n, c int) (*Placement, error) {
	if n < 0 {
		return nil, fmt.Errorf("%w: n=%d", ErrPlacement, n)
	}
	used := make(map[[2]int]bool)
	load := make([]int, n)
	var tris []Triangle
	edge := func(a, b int) [2]int {
		if a > b {
			a, b = b, a
		}
		return [2]int{a, b}
	}
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if used[edge(a, b)] {
				continue
			}
			for d := b + 1; d < n; d++ {
				if used[edge(a, d)] || used[edge(b, d)] {
					continue
				}
				if c > 0 && (load[a] >= c || load[b] >= c || load[d] >= c) {
					continue
				}
				used[edge(a, b)] = true
				used[edge(a, d)] = true
				used[edge(b, d)] = true
				load[a]++
				load[b]++
				load[d]++
				tris = append(tris, Triangle{a, b, d})
				break
			}
		}
	}
	return &Placement{N: n, Capacity: c, Triangles: tris}, nil
}

// UtilizationRow compares placement strategies for one (n, c) point.
type UtilizationRow struct {
	N, C            int
	Theorem2        int     // guests by the constructive algorithm
	Greedy          int     // guests by greedy packing at same capacity
	Isolated        int     // guests when each runs alone on one machine
	Theorem1Bound   int     // max triangles ignoring capacity
	UtilizationGain float64 // Theorem2 / Isolated
}

// UtilizationTable evaluates the Theorem-2 family for the given n values
// at capacity c(n) = (n-1)/2 (the maximum the theorem allows) unless
// capOverride > 0.
func UtilizationTable(ns []int, capOverride int) ([]UtilizationRow, error) {
	rows := make([]UtilizationRow, 0, len(ns))
	for _, n := range ns {
		c := (n - 1) / 2
		if capOverride > 0 {
			c = capOverride
		}
		p, err := PlaceTheorem2(n, c)
		if err != nil {
			return nil, err
		}
		g, err := GreedyPack(n, c)
		if err != nil {
			return nil, err
		}
		t1, err := Theorem1Max(n)
		if err != nil {
			return nil, err
		}
		rows = append(rows, UtilizationRow{
			N:               n,
			C:               c,
			Theorem2:        p.Guests(),
			Greedy:          g.Guests(),
			Isolated:        n,
			Theorem1Bound:   t1,
			UtilizationGain: float64(p.Guests()) / float64(n),
		})
	}
	return rows, nil
}
