package placement

import (
	"fmt"
	"slices"
	"sort"
)

// ErrNoFeasibleHost reports that an admission or re-home request cannot be
// satisfied by the current pool state: every candidate triangle (or host)
// either reuses an occupied K_n edge, exceeds a machine's capacity, or
// lands on a drained machine. It is the expected online analogue of
// Theorem 1's packing bound, not a bug; callers check it with errors.Is and
// degrade gracefully (reject the tenant, keep serving on two replicas, skip
// the move).
var ErrNoFeasibleHost = fmt.Errorf("%w: no feasible host", ErrPlacement)

// ErrNoCapacity is the historical name for ErrNoFeasibleHost; they are the
// same value, so errors.Is matches either.
var ErrNoCapacity = ErrNoFeasibleHost

// ErrDrained reports a drain-state misuse (draining a machine twice,
// undraining a live one).
var ErrDrained = fmt.Errorf("%w: drain state", ErrPlacement)

// Pool is the incremental counterpart of GreedyPack/PlaceTheorem2: it
// maintains an edge-disjoint triangle packing of K_n under online guest
// arrivals (Admit), departures (Release) and replica re-homing after a
// failure (Rehome), instead of recomputing a static Bose packing.
//
// Invariants, preserved by every mutation:
//
//  1. Edge-disjointness: each undirected edge {a,b} of K_n is held by at
//     most one resident guest (the paper's replica-nonoverlap constraint —
//     two guests may share at most one machine).
//  2. Capacity: each machine hosts at most Capacity resident replicas
//     (when Capacity > 0).
//  3. Conservation: Release and Rehome return a departing replica's edges
//     and capacity to the pool exactly once.
//
// Host selection is deterministic: candidates are scanned least-loaded
// first with the machine index as tie-break, so a seeded scenario replays
// bit-identically.
type Pool struct {
	n        int
	capacity int

	// used maps each occupied normalized edge to the guest holding it.
	used map[[2]int]string
	// load is the resident replica count per machine.
	load []int
	// tris is the triangle of each resident guest.
	tris map[string]Triangle
	// drained marks machines removed from placement (planned maintenance):
	// they keep their current residents until evacuated but receive no new
	// replicas.
	drained []bool

	// scores, when non-nil (SetHostScore), are external load scores — a
	// telemetry feed such as disk backlog — consulted as a tie-break after
	// replica load and before the machine index. Scores refine the scan
	// order only; they never veto a feasible placement.
	scores []float64
	// gated marks machines excluded from new placements by the admission
	// controller (telemetry says their I/O tail endangers proposal
	// deadlines). Like drained, a gated machine keeps its residents.
	gated []bool

	// orderScratch backs hostOrder so every placement decision does not
	// allocate a fresh index slice.
	orderScratch []int
}

// NewPool creates an empty pool over n machines of per-machine capacity c
// (c <= 0 means unbounded).
func NewPool(n, c int) (*Pool, error) {
	if n < 0 {
		return nil, fmt.Errorf("%w: n=%d", ErrPlacement, n)
	}
	return &Pool{
		n:        n,
		capacity: c,
		used:     make(map[[2]int]string),
		load:     make([]int, n),
		tris:     make(map[string]Triangle),
		drained:  make([]bool, n),
	}, nil
}

// N returns the machine count.
func (p *Pool) N() int { return p.n }

// Capacity returns the per-machine capacity (<= 0: unbounded).
func (p *Pool) Capacity() int { return p.capacity }

// Guests returns the number of resident guests.
func (p *Pool) Guests() int { return len(p.tris) }

// Load returns machine i's resident replica count.
func (p *Pool) Load(i int) int {
	if i < 0 || i >= p.n {
		return 0
	}
	return p.load[i]
}

// EdgesUsed returns the number of occupied K_n edges (3 per guest).
func (p *Pool) EdgesUsed() int { return len(p.used) }

// Utilization returns resident replicas over the total capacity of the
// undrained machines, in [0,1] — transiently above 1 while a drained
// machine still holds residents awaiting evacuation. With unbounded
// capacity (or everything drained) it returns 0.
func (p *Pool) Utilization() float64 {
	if p.capacity <= 0 || p.n == 0 {
		return 0
	}
	avail := 0
	for i := 0; i < p.n; i++ {
		if !p.drained[i] {
			avail++
		}
	}
	if avail == 0 {
		return 0
	}
	return float64(3*len(p.tris)) / float64(avail*p.capacity)
}

// Drain removes machine i from placement: it keeps its current residents
// (evacuating them is the control plane's job) but Admit/Rehome will not
// put new replicas on it until Undrain.
func (p *Pool) Drain(i int) error {
	if i < 0 || i >= p.n {
		return fmt.Errorf("%w: machine %d out of range", ErrPlacement, i)
	}
	if p.drained[i] {
		return fmt.Errorf("%w: machine %d already drained", ErrDrained, i)
	}
	p.drained[i] = true
	return nil
}

// Undrain returns a drained machine's capacity to the pool.
func (p *Pool) Undrain(i int) error {
	if i < 0 || i >= p.n {
		return fmt.Errorf("%w: machine %d out of range", ErrPlacement, i)
	}
	if !p.drained[i] {
		return fmt.Errorf("%w: machine %d not drained", ErrDrained, i)
	}
	p.drained[i] = false
	return nil
}

// Drained reports whether machine i is removed from placement.
func (p *Pool) Drained(i int) bool {
	return i >= 0 && i < p.n && p.drained[i]
}

// SetHostScore installs an external load score for machine i (higher =
// more loaded). Scores order equally-replica-loaded machines: the scan
// still prefers fewer resident replicas first, then lower score, then
// lower index. All-zero scores reproduce the historical order exactly, so
// a control plane that never feeds scores places identically to one
// without the feature.
func (p *Pool) SetHostScore(i int, s float64) error {
	if i < 0 || i >= p.n {
		return fmt.Errorf("%w: machine %d out of range", ErrPlacement, i)
	}
	if p.scores == nil {
		if s == 0 {
			return nil
		}
		p.scores = make([]float64, p.n)
	}
	p.scores[i] = s
	return nil
}

// HostScore returns machine i's external load score (0 when unset).
func (p *Pool) HostScore(i int) float64 {
	if p.scores == nil || i < 0 || i >= p.n {
		return 0
	}
	return p.scores[i]
}

// SetHostGate excludes machine i from (or readmits it to) new placements.
// A gated machine behaves like a drained one for Admit/Rehome — residents
// stay, nothing new lands — but the gate is the admission controller's
// transient telemetry decision, distinct from operator-initiated drains,
// and does not affect utilization accounting or drain-state validation.
func (p *Pool) SetHostGate(i int, gated bool) error {
	if i < 0 || i >= p.n {
		return fmt.Errorf("%w: machine %d out of range", ErrPlacement, i)
	}
	if p.gated == nil {
		if !gated {
			return nil
		}
		p.gated = make([]bool, p.n)
	}
	p.gated[i] = gated
	return nil
}

// Gated reports whether machine i is gated out of new placements.
func (p *Pool) Gated(i int) bool {
	return p.gated != nil && i >= 0 && i < p.n && p.gated[i]
}

// GatedCount returns the number of gated machines.
func (p *Pool) GatedCount() int {
	n := 0
	for i := range p.gated {
		if p.gated[i] {
			n++
		}
	}
	return n
}

// Residents returns the ids of guests with a replica on machine i, sorted —
// the deterministic evacuation order for a host drain.
func (p *Pool) Residents(i int) []string {
	var ids []string
	for id, t := range p.tris {
		if t[0] == i || t[1] == i || t[2] == i {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids
}

// Triangle returns the resident guest's triangle.
func (p *Pool) Triangle(id string) (Triangle, bool) {
	t, ok := p.tris[id]
	return t, ok
}

// edge normalizes an undirected edge.
func poolEdge(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// hostOrder returns machine indices sorted least-loaded first — replica
// load, then external score (SetHostScore), then index — the deterministic
// scan order for all placement decisions. The returned slice is pool-owned
// scratch, valid until the next call.
func (p *Pool) hostOrder() []int {
	if p.orderScratch == nil {
		p.orderScratch = make([]int, p.n)
	}
	order := p.orderScratch
	for i := range order {
		order[i] = i
	}
	// Stable by (load, score) keeps the ascending-index tie-break;
	// SortStableFunc, unlike sort.SliceStable, needs no reflection scratch.
	slices.SortStableFunc(order, func(a, b int) int {
		if d := p.load[a] - p.load[b]; d != 0 {
			return d
		}
		if p.scores != nil {
			if p.scores[a] < p.scores[b] {
				return -1
			}
			if p.scores[a] > p.scores[b] {
				return 1
			}
		}
		return 0
	})
	return order
}

// hostFull reports whether machine i can take no further replica: at
// capacity, drained for maintenance, or gated by the admission controller.
func (p *Pool) hostFull(i int) bool {
	return p.drained[i] || (p.gated != nil && p.gated[i]) || (p.capacity > 0 && p.load[i] >= p.capacity)
}

// Admit places a new guest on the least-loaded non-conflicting triangle and
// records it under id. It fails with ErrNoFeasibleHost when no edge-disjoint
// triangle with spare capacity exists.
func (p *Pool) Admit(id string) (Triangle, error) {
	if id == "" {
		return Triangle{}, fmt.Errorf("%w: empty guest id", ErrPlacement)
	}
	if _, dup := p.tris[id]; dup {
		return Triangle{}, fmt.Errorf("%w: guest %q already resident", ErrPlacement, id)
	}
	t, ok := p.findTriangle()
	if !ok {
		return Triangle{}, &infeasibleError{verb: "admit", id: id}
	}
	p.commit(id, t)
	return t, nil
}

// findTriangle scans for the least-loaded edge-disjoint triangle with spare
// capacity — Admit's placement decision, shared with the migration planner's
// dry runs.
func (p *Pool) findTriangle() (Triangle, bool) {
	order := p.hostOrder()
	for ia, a := range order {
		if p.hostFull(a) {
			continue
		}
		for ib := ia + 1; ib < len(order); ib++ {
			b := order[ib]
			if p.hostFull(b) || p.edgeUsed(a, b) {
				continue
			}
			for ic := ib + 1; ic < len(order); ic++ {
				c := order[ic]
				if p.hostFull(c) || p.edgeUsed(a, c) || p.edgeUsed(b, c) {
					continue
				}
				return Triangle{a, b, c}.normalize(), true
			}
		}
	}
	return Triangle{}, false
}

// infeasibleError is the typed no-feasible-host failure. A full pool makes
// this the common outcome of the admission hot path (callers evict and
// retry), so it formats lazily instead of paying fmt.Errorf per attempt.
type infeasibleError struct {
	verb string
	id   string
}

func (e *infeasibleError) Error() string {
	return fmt.Sprintf("%s %q: %v", e.verb, e.id, ErrNoFeasibleHost)
}

func (e *infeasibleError) Unwrap() error { return ErrNoFeasibleHost }

// AdmitTriangle places a guest on an explicit triangle (e.g. replaying a
// stored assignment, or restoring one after a failed replacement),
// enforcing edge-disjointness and capacity. Unlike Admit it will place on
// a drained machine: the caller named the triangle deliberately, and the
// rollback of a replica move must be able to restore the pre-move state
// mid-drain.
func (p *Pool) AdmitTriangle(id string, t Triangle) error {
	if id == "" {
		return fmt.Errorf("%w: empty guest id", ErrPlacement)
	}
	if _, dup := p.tris[id]; dup {
		return fmt.Errorf("%w: guest %q already resident", ErrPlacement, id)
	}
	t = t.normalize()
	if t[0] == t[1] || t[1] == t[2] {
		return fmt.Errorf("%w: degenerate triangle %v", ErrPlacement, t)
	}
	for _, v := range t {
		if v < 0 || v >= p.n {
			return fmt.Errorf("%w: machine %d out of range", ErrPlacement, v)
		}
		if p.capacity > 0 && p.load[v] >= p.capacity {
			return fmt.Errorf("admit %q on %v: %w", id, t, ErrNoFeasibleHost)
		}
	}
	for _, e := range t.edges() {
		if owner, busy := p.used[e]; busy {
			return fmt.Errorf("admit %q on %v: edge %v held by %q: %w", id, t, e, owner, ErrNoFeasibleHost)
		}
	}
	p.commit(id, t)
	return nil
}

func (p *Pool) edgeUsed(a, b int) bool {
	_, ok := p.used[poolEdge(a, b)]
	return ok
}

func (p *Pool) commit(id string, t Triangle) {
	for _, e := range t.edges() {
		p.used[e] = id
	}
	for _, v := range t {
		p.load[v]++
	}
	p.tris[id] = t
}

// Release evicts a resident guest, returning its edges and capacity to the
// pool, and reports the triangle it occupied.
func (p *Pool) Release(id string) (Triangle, error) {
	t, ok := p.tris[id]
	if !ok {
		return Triangle{}, fmt.Errorf("%w: guest %q not resident", ErrPlacement, id)
	}
	for _, e := range t.edges() {
		delete(p.used, e)
	}
	for _, v := range t {
		p.load[v]--
	}
	delete(p.tris, id)
	return t, nil
}

// Rehome moves guest id's replica off machine dead onto a fresh machine
// whose edges to both survivors are free (the paper's Sec. VII replacement:
// the two surviving replicas re-create the third elsewhere). The dead
// machine itself is excluded. It returns the updated triangle and the
// chosen machine.
func (p *Pool) Rehome(id string, dead int) (Triangle, int, error) {
	t, ok := p.tris[id]
	if !ok {
		return Triangle{}, 0, fmt.Errorf("%w: guest %q not resident", ErrPlacement, id)
	}
	slot := -1
	for i, v := range t {
		if v == dead {
			slot = i
		}
	}
	if slot < 0 {
		return Triangle{}, 0, fmt.Errorf("%w: guest %q has no replica on machine %d", ErrPlacement, id, dead)
	}
	s1, s2 := t[(slot+1)%3], t[(slot+2)%3]
	h, ok := p.findRehomeHost(s1, s2, dead)
	if !ok {
		return Triangle{}, 0, fmt.Errorf("rehome %q off machine %d: %w", id, dead, ErrNoFeasibleHost)
	}
	p.moveReplica(id, dead, h)
	return p.tris[id], h, nil
}

// findRehomeHost scans for a machine that can take a replica alongside
// survivors s1 and s2 (the dead machine excluded) — Rehome's placement
// decision, shared with the migration planner's dry runs.
func (p *Pool) findRehomeHost(s1, s2, dead int) (int, bool) {
	for _, h := range p.hostOrder() {
		if h == dead || !p.canPlace(h, s1, s2) {
			continue
		}
		return h, true
	}
	return 0, false
}

// canPlace reports whether machine h can host a replica alongside survivors
// s1 and s2: not one of them, not full, and both new edges free.
func (p *Pool) canPlace(h, s1, s2 int) bool {
	return h != s1 && h != s2 && !p.hostFull(h) &&
		!p.edgeUsed(s1, h) && !p.edgeUsed(s2, h)
}

// moveReplica moves guest id's replica from machine `from` to machine `to`
// without feasibility checks — the caller has established them (or is
// reverting a speculative move, which is always legal: the freed edges and
// capacity are exactly the ones the forward move claimed).
func (p *Pool) moveReplica(id string, from, to int) {
	t := p.tris[id]
	slot := 0
	for i, v := range t {
		if v == from {
			slot = i
		}
	}
	s1, s2 := t[(slot+1)%3], t[(slot+2)%3]
	delete(p.used, poolEdge(s1, from))
	delete(p.used, poolEdge(s2, from))
	p.load[from]--
	nt := Triangle{s1, s2, to}.normalize()
	for _, e := range nt.edges() {
		p.used[e] = id
	}
	p.load[to]++
	p.tris[id] = nt
}

// RehomeTo moves guest id's replica from machine `from` onto the pinned
// machine `to` — the planned-migration analogue of Rehome, where the
// destination was chosen by the planner instead of scanned for. It fails
// with ErrNoFeasibleHost when the pinned destination cannot take the replica
// (full, gated, drained, or an edge to a survivor is occupied).
func (p *Pool) RehomeTo(id string, from, to int) (Triangle, error) {
	t, ok := p.tris[id]
	if !ok {
		return Triangle{}, fmt.Errorf("%w: guest %q not resident", ErrPlacement, id)
	}
	slot := -1
	for i, v := range t {
		if v == from {
			slot = i
		}
	}
	if slot < 0 {
		return Triangle{}, fmt.Errorf("%w: guest %q has no replica on machine %d", ErrPlacement, id, from)
	}
	if to < 0 || to >= p.n {
		return Triangle{}, fmt.Errorf("%w: machine %d out of range", ErrPlacement, to)
	}
	s1, s2 := t[(slot+1)%3], t[(slot+2)%3]
	if to == from || !p.canPlace(to, s1, s2) {
		return Triangle{}, fmt.Errorf("migrate %q %d→%d: %w", id, from, to, ErrNoFeasibleHost)
	}
	p.moveReplica(id, from, to)
	return p.tris[id], nil
}

// MigrationPlan is a single planned replica move that unblocks an otherwise
// infeasible placement request: move GuestID's replica From → To, then retry.
type MigrationPlan struct {
	GuestID  string
	From, To int
}

// PlanAdmitMigration searches for a one-move migration after which Admit(id)
// would succeed. Candidate donor guests are scanned in sorted-id order and
// destinations least-loaded first, so the plan is deterministic; avoid (when
// non-nil) excludes guests the caller cannot move (e.g. mid-operation). The
// pool is left unchanged — the move is speculative, applied and reverted.
func (p *Pool) PlanAdmitMigration(id string, avoid func(string) bool) (MigrationPlan, bool) {
	if id == "" {
		return MigrationPlan{}, false
	}
	if _, dup := p.tris[id]; dup {
		return MigrationPlan{}, false
	}
	order := append([]int(nil), p.hostOrder()...)
	for _, mid := range p.IDs() {
		if avoid != nil && avoid(mid) {
			continue
		}
		t := p.tris[mid]
		for si := 0; si < 3; si++ {
			from := t[si]
			m1, m2 := t[(si+1)%3], t[(si+2)%3]
			for _, to := range order {
				if to == from || !p.canPlace(to, m1, m2) {
					continue
				}
				p.moveReplica(mid, from, to)
				_, feasible := p.findTriangle()
				p.moveReplica(mid, to, from)
				if feasible {
					return MigrationPlan{GuestID: mid, From: from, To: to}, true
				}
			}
		}
	}
	return MigrationPlan{}, false
}

// PlanRehomeMigration searches for a one-move migration of some other guest
// after which Rehome(id, dead) would succeed — the recovery analogue of
// PlanAdmitMigration, for a crashed replica that cannot be re-homed in the
// current packing. The dead machine is excluded as a destination.
func (p *Pool) PlanRehomeMigration(id string, dead int, avoid func(string) bool) (MigrationPlan, bool) {
	t, ok := p.tris[id]
	if !ok {
		return MigrationPlan{}, false
	}
	slot := -1
	for i, v := range t {
		if v == dead {
			slot = i
		}
	}
	if slot < 0 {
		return MigrationPlan{}, false
	}
	s1, s2 := t[(slot+1)%3], t[(slot+2)%3]
	order := append([]int(nil), p.hostOrder()...)
	for _, mid := range p.IDs() {
		if mid == id || (avoid != nil && avoid(mid)) {
			continue
		}
		mt := p.tris[mid]
		for si := 0; si < 3; si++ {
			from := mt[si]
			m1, m2 := mt[(si+1)%3], mt[(si+2)%3]
			for _, to := range order {
				if to == dead || to == from || !p.canPlace(to, m1, m2) {
					continue
				}
				p.moveReplica(mid, from, to)
				_, feasible := p.findRehomeHost(s1, s2, dead)
				p.moveReplica(mid, to, from)
				if feasible {
					return MigrationPlan{GuestID: mid, From: from, To: to}, true
				}
			}
		}
	}
	return MigrationPlan{}, false
}

// IDs returns the resident guest ids in sorted order.
func (p *Pool) IDs() []string {
	ids := make([]string, 0, len(p.tris))
	for id := range p.tris {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Snapshot returns the current packing as a Placement (for Verify and for
// interop with the offline tooling). Triangles are ordered by guest id.
func (p *Pool) Snapshot() *Placement {
	ids := p.IDs()
	tris := make([]Triangle, 0, len(ids))
	for _, id := range ids {
		tris = append(tris, p.tris[id])
	}
	return &Placement{N: p.n, Capacity: p.capacity, Triangles: tris}
}

// Verify checks the full pool state against the StopWatch constraints via
// the same checker the offline constructions use, plus the pool's own
// bookkeeping (edge count and load consistency).
func (p *Pool) Verify() error {
	if err := p.Snapshot().Verify(); err != nil {
		return err
	}
	if len(p.used) != 3*len(p.tris) {
		return fmt.Errorf("%w: %d edges recorded for %d guests", ErrPlacement, len(p.used), len(p.tris))
	}
	want := make([]int, p.n)
	for _, t := range p.tris {
		for _, v := range t {
			want[v]++
		}
	}
	for i, l := range p.load {
		if l != want[i] {
			return fmt.Errorf("%w: machine %d load %d, triangles say %d", ErrPlacement, i, l, want[i])
		}
	}
	return nil
}
