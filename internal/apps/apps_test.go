package apps

import (
	"errors"
	"testing"

	"stopwatch/internal/guest"
	"stopwatch/internal/netsim"
	"stopwatch/internal/sim"
	"stopwatch/internal/transport"
	"stopwatch/internal/vmm"
	"stopwatch/internal/vtime"
)

// baselineHarness runs one guest app under a baseline runtime attached to a
// fabric at "svc:g", plus a transport client.
type baselineHarness struct {
	loop   *sim.Loop
	net    *netsim.Network
	rt     *vmm.BaselineRuntime
	client *transport.Client
}

func newBaselineHarness(t *testing.T, app guest.App) *baselineHarness {
	t.Helper()
	loop := sim.NewLoop()
	src := sim.NewSource(7)
	net, err := netsim.New(loop, src.Stream("net"), netsim.LinkConfig{Latency: sim.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	host, err := vmm.NewHost("h", loop, src.Stream("host"), sim.NewClock(0, 0), vmm.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rt, err := vmm.NewBaselineRuntime(host, "g", app)
	if err != nil {
		t.Fatal(err)
	}
	svc := netsim.Addr("svc:g")
	rt.OnSend = vmm.SendSinkFunc(func(a guest.IOAction) {
		net.Send(&netsim.Packet{Src: svc, Dst: a.Dst, Size: a.Size, Kind: "data", Payload: a.Data})
	})
	if err := net.Attach(&netsim.FuncNode{Addr: svc, Fn: func(p *netsim.Packet) {
		rt.HandleInbound(guest.Payload{Src: p.Src, Size: p.Size, Data: p.Payload})
	}}); err != nil {
		t.Fatal(err)
	}
	cl, err := transport.NewClient(net, loop, "client")
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	return &baselineHarness{loop: loop, net: net, rt: rt, client: cl}
}

func TestFileServerValidation(t *testing.T) {
	if _, err := NewFileServer(FileServerConfig{Mode: 0, DiskChunk: 1}); !errors.Is(err, ErrApp) {
		t.Fatal("bad mode should fail")
	}
	cfg := DefaultFileServerConfig()
	cfg.DiskChunk = 0
	if _, err := NewFileServer(cfg); !errors.Is(err, ErrApp) {
		t.Fatal("bad chunk should fail")
	}
}

func TestFileServerServesSequentialChunks(t *testing.T) {
	fs, err := NewFileServer(DefaultFileServerConfig())
	if err != nil {
		t.Fatal(err)
	}
	h := newBaselineHarness(t, fs)
	dl := NewDownloader(h.client)
	var lat []sim.Time
	// 200KB = 4 chunks of 64KB read one at a time.
	if err := dl.Fetch("svc:g", ModeTCP, 200<<10, func(l sim.Time) { lat = append(lat, l) }); err != nil {
		t.Fatal(err)
	}
	if err := h.loop.RunUntil(30 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if len(lat) != 1 {
		t.Fatalf("downloads: %d", len(lat))
	}
	if fs.Served() != 1 {
		t.Fatalf("served = %d", fs.Served())
	}
	if got := h.rt.VM().Stats().DiskRequests; got != 4 {
		t.Fatalf("disk requests = %d, want 4 sequential chunks", got)
	}
	if len(dl.Latencies()) != 1 {
		t.Fatal("downloader did not record latency")
	}
}

func TestFileServerUDPMode(t *testing.T) {
	cfg := DefaultFileServerConfig()
	cfg.Mode = ModeUDP
	fs, err := NewFileServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := newBaselineHarness(t, fs)
	dl := NewDownloader(h.client)
	done := false
	if err := dl.Fetch("svc:g", ModeUDP, 50<<10, func(sim.Time) { done = true }); err != nil {
		t.Fatal(err)
	}
	if err := h.loop.RunUntil(10 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("udp download incomplete")
	}
	if h.client.PacketsSent() != 1 {
		t.Fatalf("udp client sent %d packets, want 1", h.client.PacketsSent())
	}
}

func TestDownloaderBadMode(t *testing.T) {
	fs, err := NewFileServer(DefaultFileServerConfig())
	if err != nil {
		t.Fatal(err)
	}
	h := newBaselineHarness(t, fs)
	dl := NewDownloader(h.client)
	if err := dl.Fetch("svc:g", 0, 1024, nil); !errors.Is(err, ErrApp) {
		t.Fatal("bad mode should fail")
	}
}

func TestNFSServerOpBehaviour(t *testing.T) {
	srv, err := NewNFSServer(16)
	if err != nil {
		t.Fatal(err)
	}
	h := newBaselineHarness(t, srv)
	conn := h.client.Connect("svc:g", nil)
	completed := map[NFSOp]int{}
	for _, op := range []NFSOp{OpGetattr, OpLookup, OpLookup, OpLookup, OpLookup, OpRead, OpWrite, OpSetattr, OpCreate} {
		op := op
		if err := h.client.Request(conn, NFSRequest{Op: op, Bytes: 8192}, func(transport.Response) {
			completed[op]++
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.loop.RunUntil(30 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if srv.Served() != 9 {
		t.Fatalf("served %d/9 ops", srv.Served())
	}
	for _, op := range []NFSOp{OpGetattr, OpRead, OpWrite, OpSetattr, OpCreate} {
		if completed[op] == 0 {
			t.Fatalf("op %v never completed", op)
		}
	}
	// Disk behaviour: read+write+setattr+create = 4, plus exactly one
	// lookup in four missing the name cache = 5 disk requests total.
	if got := h.rt.VM().Stats().DiskRequests; got != 5 {
		t.Fatalf("disk requests = %d, want 5", got)
	}
}

func TestNFSOpString(t *testing.T) {
	names := map[NFSOp]string{
		OpSetattr: "setattr", OpLookup: "lookup", OpWrite: "write",
		OpGetattr: "getattr", OpRead: "read", OpCreate: "create", NFSOp(0): "?",
	}
	for op, want := range names {
		if op.String() != want {
			t.Fatalf("%d.String() = %q", op, op.String())
		}
	}
}

func TestPaperMixWeights(t *testing.T) {
	mix := PaperMix()
	var sum float64
	for _, m := range mix {
		sum += m.Weight
	}
	if sum < 99.9 || sum > 100.1 {
		t.Fatalf("mix weights sum to %v, want ~100", sum)
	}
	if len(mix) != 6 {
		t.Fatalf("mix entries: %d", len(mix))
	}
}

func TestNFSLoadGenValidation(t *testing.T) {
	loop := sim.NewLoop()
	src := sim.NewSource(1)
	net, err := netsim.New(loop, src.Stream("n"), netsim.LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := transport.NewClient(net, loop, "c")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewNFSLoadGen(nil, src.Stream("g"), cl, "svc:x", PaperMix(), NFSLoadGenConfig{Processes: 1, RatePerSec: 1}); !errors.Is(err, ErrApp) {
		t.Fatal("nil loop should fail")
	}
	if _, err := NewNFSLoadGen(loop, src.Stream("g"), cl, "svc:x", PaperMix(), NFSLoadGenConfig{Processes: 0, RatePerSec: 1}); !errors.Is(err, ErrApp) {
		t.Fatal("0 processes should fail")
	}
	if _, err := NewNFSLoadGen(loop, src.Stream("g"), cl, "svc:x", nil, NFSLoadGenConfig{Processes: 1, RatePerSec: 1}); !errors.Is(err, ErrApp) {
		t.Fatal("empty mix should fail")
	}
}

func TestParsecAppChain(t *testing.T) {
	prof := ParsecProfile{Name: "t", ComputeBranches: 5_000_000, DiskReads: 3, BytesPerRead: 4096}
	app, err := NewParsecApp(prof, "collector")
	if err != nil {
		t.Fatal(err)
	}
	h := newBaselineHarness(t, app)
	got := 0
	if err := h.net.Attach(&netsim.FuncNode{Addr: "collector", Fn: func(p *netsim.Packet) {
		got++
		if p.Payload != "done:t" {
			t.Errorf("payload %v", p.Payload)
		}
	}}); err != nil {
		t.Fatal(err)
	}
	if err := h.loop.RunUntil(5 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Fatalf("collector packets: %d", got)
	}
	if !app.Done() {
		t.Fatal("app not done")
	}
	if ints := h.rt.VM().Stats().DiskInterrupts; ints != 3 {
		t.Fatalf("disk interrupts = %d, want 3", ints)
	}
}

func TestParsecValidation(t *testing.T) {
	if _, err := NewParsecApp(ParsecProfile{DiskReads: 0, BytesPerRead: 1}, "c"); !errors.Is(err, ErrApp) {
		t.Fatal("0 reads should fail")
	}
	if _, err := NewParsecApp(ParsecProfile{DiskReads: 1, BytesPerRead: 1}, ""); !errors.Is(err, ErrApp) {
		t.Fatal("no collector should fail")
	}
}

func TestPaperParsecProfilesCalibration(t *testing.T) {
	profs := PaperParsecProfiles()
	if len(profs) != 5 {
		t.Fatalf("profiles: %d", len(profs))
	}
	// Paper disk interrupt counts (Fig 7b).
	wantInts := map[string]int{"ferret": 31, "blackscholes": 38, "canneal": 183, "dedup": 293, "streamcluster": 27}
	for _, p := range profs {
		if p.DiskReads != wantInts[p.Name] {
			t.Fatalf("%s: %d reads, want %d", p.Name, p.DiskReads, wantInts[p.Name])
		}
		// Calibration identity: compute ≈ (baseline − reads×1.7ms)×1e6.
		wantCompute := (p.BaselinePaperMS - float64(p.DiskReads)*1.7) * 1e6
		diff := float64(p.ComputeBranches) - wantCompute
		if diff < -1e6 || diff > 1e6 {
			t.Fatalf("%s: compute %d vs calibration %v", p.Name, p.ComputeBranches, wantCompute)
		}
	}
}

func TestProbeAppRecordsDeliveries(t *testing.T) {
	probe := NewProbeApp()
	h := newBaselineHarness(t, probe)
	for i := 0; i < 5; i++ {
		at := sim.Time(i+1) * 10 * sim.Millisecond
		h.loop.At(at, "p", func() {
			h.net.Send(&netsim.Packet{Src: "x", Dst: "svc:g", Size: 64, Kind: "probe"})
		})
	}
	if err := h.loop.RunUntil(sim.Second); err != nil {
		t.Fatal(err)
	}
	times := probe.DeliveryTimes()
	if len(times) != 5 {
		t.Fatalf("deliveries: %d", len(times))
	}
	gaps := probe.InterDeliveryGaps()
	if len(gaps) != 4 {
		t.Fatalf("gaps: %d", len(gaps))
	}
	for _, g := range gaps {
		// ~10ms spacing ± delivery jitter.
		if g < 5e6 || g > 15e6 {
			t.Fatalf("gap %v ns implausible", g)
		}
	}
	if probe.InterDeliveryGaps() == nil {
		t.Fatal("gaps should be non-nil with 5 deliveries")
	}
	empty := NewProbeApp()
	if empty.InterDeliveryGaps() != nil {
		t.Fatal("no deliveries should give nil gaps")
	}
}

func TestBeaconAppGeneratesLoad(t *testing.T) {
	b := NewBeaconApp(vtime.Virtual(10 * sim.Millisecond))
	b.Sink = "sink"
	h := newBaselineHarness(t, b)
	sunk := 0
	if err := h.net.Attach(&netsim.FuncNode{Addr: "sink", Fn: func(*netsim.Packet) { sunk++ }}); err != nil {
		t.Fatal(err)
	}
	if err := h.loop.RunUntil(sim.Second); err != nil {
		t.Fatal(err)
	}
	// ~100 bursts/second at a 10ms period (compute+disk slow it slightly).
	if b.Bursts() < 50 || b.Bursts() > 110 {
		t.Fatalf("bursts in 1s: %d", b.Bursts())
	}
	if sunk == 0 {
		t.Fatal("beacon never reached sink")
	}
	if h.rt.VM().Stats().DiskRequests == 0 {
		t.Fatal("beacon generated no disk load")
	}
}

func TestProbeSourceConstantAndPoisson(t *testing.T) {
	loop := sim.NewLoop()
	src := sim.NewSource(5)
	net, err := netsim.New(loop, src.Stream("n"), netsim.LinkConfig{})
	if err != nil {
		t.Fatal(err)
	}
	var arrivals []sim.Time
	if err := net.Attach(&netsim.FuncNode{Addr: "dst", Fn: func(*netsim.Packet) {
		arrivals = append(arrivals, loop.Now())
	}}); err != nil {
		t.Fatal(err)
	}
	ps := NewProbeSource(net, loop, src.Stream("p"), "src", "dst", 5*sim.Millisecond)
	ps.Constant = true
	var sends []sim.Time
	ps.OnSend = func(seq uint64, at sim.Time) { sends = append(sends, at) }
	ps.Start(100 * sim.Millisecond)
	if err := loop.RunUntil(200 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(sends) < 18 || len(sends) > 21 {
		t.Fatalf("constant-rate sends in 100ms at 5ms: %d", len(sends))
	}
	for i := 1; i < len(sends); i++ {
		if sends[i]-sends[i-1] != 5*sim.Millisecond {
			t.Fatalf("constant gap violated: %v", sends[i]-sends[i-1])
		}
	}
	if ps.Sent() != uint64(len(sends)) {
		t.Fatal("sent counter mismatch")
	}
}
