// Package apps contains the guest workloads of the paper's evaluation:
// the web/file server of Fig. 5, the NFS server and nhfsstone-style load
// generator of Fig. 6, PARSEC-like compute profiles for Fig. 7, and the
// attacker probe / victim workloads behind Fig. 4.
package apps

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"stopwatch/internal/guest"
	"stopwatch/internal/netsim"
	"stopwatch/internal/sim"
	"stopwatch/internal/transport"
	"stopwatch/internal/vtime"
)

// ErrApp reports invalid app configuration.
var ErrApp = errors.New("apps: invalid")

// GetFile asks a file server for a blob of the given size. Name selects
// the file (for tracing); Bytes its size.
type GetFile struct {
	Name  string
	Bytes int
}

// FileServerMode selects the transport of a FileServer.
type FileServerMode int

// FileServer transports.
const (
	ModeTCP FileServerMode = iota + 1
	ModeUDP
)

// FileServerConfig parameterizes a FileServer guest.
type FileServerConfig struct {
	Mode FileServerMode
	// Window is the TCP window in segments (ignored for UDP).
	Window int
	// RTO enables TCP server retransmission (guest virtual time; 0 = off).
	RTO vtime.Virtual
	// DiskChunk is the bytes fetched per disk read when serving cold files
	// (the paper's downloads were from a cold start).
	DiskChunk int
	// RequestCompute is the branch cost of parsing a request.
	RequestCompute int64
}

// DefaultFileServerConfig mirrors the paper's Apache setup: TCP, cold
// reads, 64KB readahead.
func DefaultFileServerConfig() FileServerConfig {
	return FileServerConfig{
		Mode:           ModeTCP,
		Window:         16,
		DiskChunk:      64 << 10,
		RequestCompute: 50_000,
	}
}

// FileServer is the guest app behind Figs. 4 and 5: it serves GetFile
// requests from disk over TCP or UDP.
type FileServer struct {
	cfg FileServerConfig
	tcp *transport.TCPServer
	udp *transport.UDPServer

	// pending[respID] tracks disk reads still outstanding per response.
	pending map[uint64]*pendingFile

	served uint64
}

type pendingFile struct {
	src       netsim.Addr
	conn      uint64
	respID    uint64
	bytes     int
	nextOff   int // next file offset to read
	remaining int // chunks still to read
}

var _ guest.App = (*FileServer)(nil)

// NewFileServer builds the app.
func NewFileServer(cfg FileServerConfig) (*FileServer, error) {
	if cfg.Mode != ModeTCP && cfg.Mode != ModeUDP {
		return nil, fmt.Errorf("%w: file server mode %d", ErrApp, cfg.Mode)
	}
	if cfg.DiskChunk <= 0 {
		return nil, fmt.Errorf("%w: disk chunk %d", ErrApp, cfg.DiskChunk)
	}
	fs := &FileServer{cfg: cfg, pending: make(map[uint64]*pendingFile)}
	switch cfg.Mode {
	case ModeTCP:
		srv, err := transport.NewTCPServer(cfg.Window)
		if err != nil {
			return nil, err
		}
		srv.RTO = cfg.RTO
		srv.OnRequest = fs.onRequest
		fs.tcp = srv
	case ModeUDP:
		srv := transport.NewUDPServer()
		srv.OnRequest = fs.onRequest
		fs.udp = srv
	}
	return fs, nil
}

// Served reports completed requests (disk phase finished).
func (fs *FileServer) Served() uint64 { return fs.served }

// Boot implements guest.App.
func (fs *FileServer) Boot(ctx guest.Ctx) {}

// OnPacket implements guest.App.
func (fs *FileServer) OnPacket(ctx guest.Ctx, p guest.Payload) {
	if fs.tcp != nil {
		fs.tcp.HandleSegment(ctx, p.Src, p.Data)
		return
	}
	fs.udp.HandleSegment(ctx, p.Src, p.Data)
}

func (fs *FileServer) onRequest(ctx guest.Ctx, src netsim.Addr, conn, respID uint64, req any) {
	g, ok := req.(GetFile)
	if !ok {
		return
	}
	ctx.Compute(fs.cfg.RequestCompute)
	reads := (g.Bytes + fs.cfg.DiskChunk - 1) / fs.cfg.DiskChunk
	if reads == 0 {
		reads = 1
	}
	pf := &pendingFile{src: src, conn: conn, respID: respID, bytes: g.Bytes, remaining: reads}
	fs.pending[respID] = pf
	// Chunks are read SEQUENTIALLY (OnDiskDone issues the next), as a web
	// server streams a cold file. Parallel issue would violate StopWatch's
	// Δd >= max-transfer-time assumption: the k-th parallel request queues
	// behind k-1 others at the disk, so its real completion can exceed Δd.
	fs.issueNextChunk(ctx, pf)
}

func (fs *FileServer) issueNextChunk(ctx guest.Ctx, pf *pendingFile) {
	chunk := fs.cfg.DiskChunk
	if rem := pf.bytes - pf.nextOff; rem < chunk {
		chunk = rem
	}
	if chunk <= 0 {
		chunk = 1
	}
	pf.nextOff += chunk
	ctx.DiskRead(fmt.Sprintf("file:%d", pf.respID), chunk)
}

// OnDiskDone implements guest.App: when the last chunk is in, respond.
func (fs *FileServer) OnDiskDone(ctx guest.Ctx, d guest.DiskDone) {
	var respID uint64
	if _, err := fmt.Sscanf(d.Tag, "file:%d", &respID); err != nil {
		return
	}
	pf, ok := fs.pending[respID]
	if !ok {
		return
	}
	pf.remaining--
	if pf.remaining > 0 {
		ctx.Compute(5_000)
		fs.issueNextChunk(ctx, pf)
		return
	}
	delete(fs.pending, respID)
	fs.served++
	ctx.Compute(30_000)
	if fs.tcp != nil {
		_ = fs.tcp.Respond(ctx, pf.conn, pf.respID, pf.bytes)
		return
	}
	fs.udp.Respond(ctx, pf.src, pf.conn, pf.respID, pf.bytes)
}

// OnTimer implements guest.App (TCP RTO).
func (fs *FileServer) OnTimer(ctx guest.Ctx, tag string) {
	if fs.tcp != nil {
		fs.tcp.HandleTimer(ctx, tag)
	}
}

// SnapshotAppend implements guest.Snapshotter: the served counter, the
// outstanding disk reads and the transport server's connection state are
// the mutable state (configuration is rebuilt by the factory; pending
// timers are the VMM's to capture). Map entries are emitted in sorted
// order, so identical replicas serialize identically — which is what lets
// long-lived file-serving guests replace via checkpoint instead of
// full-journal replay.
func (fs *FileServer) SnapshotAppend(buf []byte) []byte {
	buf = binary.AppendUvarint(buf, fs.served)
	ids := make([]uint64, 0, len(fs.pending))
	for id := range fs.pending {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	buf = binary.AppendUvarint(buf, uint64(len(ids)))
	for _, id := range ids {
		pf := fs.pending[id]
		buf = binary.AppendUvarint(buf, id)
		buf = binary.AppendUvarint(buf, uint64(len(pf.src)))
		buf = append(buf, pf.src...)
		buf = binary.AppendUvarint(buf, pf.conn)
		buf = binary.AppendUvarint(buf, pf.respID)
		buf = binary.AppendVarint(buf, int64(pf.bytes))
		buf = binary.AppendVarint(buf, int64(pf.nextOff))
		buf = binary.AppendVarint(buf, int64(pf.remaining))
	}
	if fs.tcp != nil {
		return fs.tcp.AppendState(buf)
	}
	return fs.udp.AppendState(buf)
}

// RestoreSnapshot implements guest.Snapshotter.
func (fs *FileServer) RestoreSnapshot(data []byte) error {
	bad := func(what string) error {
		return fmt.Errorf("%w: file server snapshot: bad %s", ErrApp, what)
	}
	served, n := binary.Uvarint(data)
	if n <= 0 {
		return bad("served counter")
	}
	data = data[n:]
	count, n := binary.Uvarint(data)
	if n <= 0 {
		return bad("pending count")
	}
	data = data[n:]
	pending := make(map[uint64]*pendingFile, count)
	for i := uint64(0); i < count; i++ {
		id, n := binary.Uvarint(data)
		if n <= 0 {
			return bad("pending id")
		}
		data = data[n:]
		srcLen, n := binary.Uvarint(data)
		if n <= 0 || uint64(len(data[n:])) < srcLen {
			return bad("pending src")
		}
		pf := &pendingFile{src: netsim.Addr(data[n : n+int(srcLen)])}
		data = data[n+int(srcLen):]
		if pf.conn, n = binary.Uvarint(data); n <= 0 {
			return bad("pending conn")
		}
		data = data[n:]
		if pf.respID, n = binary.Uvarint(data); n <= 0 {
			return bad("pending respID")
		}
		data = data[n:]
		var v int64
		if v, n = binary.Varint(data); n <= 0 {
			return bad("pending bytes")
		}
		pf.bytes = int(v)
		data = data[n:]
		if v, n = binary.Varint(data); n <= 0 {
			return bad("pending nextOff")
		}
		pf.nextOff = int(v)
		data = data[n:]
		if v, n = binary.Varint(data); n <= 0 {
			return bad("pending remaining")
		}
		pf.remaining = int(v)
		data = data[n:]
		pending[id] = pf
	}
	var rest []byte
	var err error
	if fs.tcp != nil {
		rest, err = fs.tcp.RestoreState(data)
	} else {
		rest, err = fs.udp.RestoreState(data)
	}
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return bad("trailing bytes")
	}
	fs.served = served
	fs.pending = pending
	return nil
}

var _ guest.Snapshotter = (*FileServer)(nil)

// Downloader drives file downloads from the fabric side and records
// latencies — the client laptop of Sec. VII-B.
type Downloader struct {
	Client *transport.Client

	latencies []sim.Time
}

// NewDownloader wraps a transport client.
func NewDownloader(c *transport.Client) *Downloader {
	return &Downloader{Client: c}
}

// Fetch downloads one file of the given size from the guest, invoking
// onDone with the measured latency.
func (d *Downloader) Fetch(svc netsim.Addr, mode FileServerMode, bytes int, onDone func(lat sim.Time)) error {
	record := func(r transport.Response) {
		d.latencies = append(d.latencies, r.Latency)
		if onDone != nil {
			onDone(r.Latency)
		}
	}
	req := GetFile{Name: fmt.Sprintf("f%d", bytes), Bytes: bytes}
	switch mode {
	case ModeTCP:
		conn := d.Client.Connect(svc, nil)
		return d.Client.Request(conn, req, record)
	case ModeUDP:
		conn := d.Client.OpenUDP(svc)
		return d.Client.Request(conn, req, record)
	default:
		return fmt.Errorf("%w: fetch mode %d", ErrApp, mode)
	}
}

// Latencies returns all recorded download latencies.
func (d *Downloader) Latencies() []sim.Time {
	out := make([]sim.Time, len(d.latencies))
	copy(out, d.latencies)
	return out
}
