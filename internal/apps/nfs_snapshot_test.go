package apps

import (
	"bytes"
	"testing"

	"stopwatch/internal/sim"
	"stopwatch/internal/transport"
)

// midOpNFSServer drives an NFS server into a mid-operation state (some ops
// answered, at least one waiting on disk, the name-cache counter advanced)
// and returns it.
func midOpNFSServer(t *testing.T) *NFSServer {
	t.Helper()
	srv, err := NewNFSServer(16)
	if err != nil {
		t.Fatal(err)
	}
	h := newBaselineHarness(t, srv)
	conn := h.client.Connect("svc:g", nil)
	for _, op := range []NFSOp{OpLookup, OpGetattr, OpRead, OpWrite, OpCreate} {
		if err := h.client.Request(conn, NFSRequest{Op: op, Bytes: 8192}, func(transport.Response) {}); err != nil {
			t.Fatal(err)
		}
	}
	// Long enough for requests to arrive and issue their disk I/O, short
	// enough that the disk queue has not drained.
	if err := h.loop.RunUntil(20 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(srv.pending) == 0 {
		t.Fatal("harness did not leave an op waiting on disk; lower RunUntil")
	}
	return srv
}

func TestNFSServerSnapshotRoundTrip(t *testing.T) {
	srv := midOpNFSServer(t)
	snap := srv.SnapshotAppend(nil)

	restored, err := NewNFSServer(16)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.RestoreSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if restored.Served() != srv.Served() {
		t.Fatalf("served %d, want %d", restored.Served(), srv.Served())
	}
	if restored.lookups != srv.lookups {
		t.Fatalf("lookups %d, want %d", restored.lookups, srv.lookups)
	}
	if len(restored.pending) != len(srv.pending) {
		t.Fatalf("pending %d, want %d", len(restored.pending), len(srv.pending))
	}
	for id, want := range srv.pending {
		got, ok := restored.pending[id]
		if !ok {
			t.Fatalf("pending %d missing after restore", id)
		}
		if *got != *want {
			t.Fatalf("pending %d = %+v, want %+v", id, got, want)
		}
	}
	// The restored state must re-serialize byte-identically: that equality
	// is what replica lockstep rests on.
	if again := restored.SnapshotAppend(nil); !bytes.Equal(again, snap) {
		t.Fatalf("re-snapshot differs: %d vs %d bytes", len(again), len(snap))
	}
}

func TestNFSServerSnapshotRejectsCorrupt(t *testing.T) {
	srv := midOpNFSServer(t)
	snap := srv.SnapshotAppend(nil)
	restored, err := NewNFSServer(16)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 1, len(snap) / 2, len(snap) - 1} {
		if err := restored.RestoreSnapshot(snap[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if err := restored.RestoreSnapshot(append(append([]byte{}, snap...), 0xFF)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}

// TestParsecSnapshotRoundTrip checkpoints the compute/disk chain mid-run
// and proves a replacement picks it up exactly where it stopped: same
// position, and the remaining disk reads complete the workload.
func TestParsecSnapshotRoundTrip(t *testing.T) {
	prof := ParsecProfile{Name: "t", ComputeBranches: 50_000_000, DiskReads: 6, BytesPerRead: 4096}
	app, err := NewParsecApp(prof, "collector")
	if err != nil {
		t.Fatal(err)
	}
	h := newBaselineHarness(t, app)
	if err := h.loop.RunUntil(20 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if app.stepsLeft == 0 || app.step == 0 {
		t.Fatalf("chain not mid-run: step=%d stepsLeft=%d; adjust RunUntil", app.step, app.stepsLeft)
	}
	snap := app.SnapshotAppend(nil)

	restored, err := NewParsecApp(prof, "collector")
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.RestoreSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if restored.step != app.step || restored.stepsLeft != app.stepsLeft || restored.doneSent != app.doneSent {
		t.Fatalf("restored chain position %d/%d/%v, want %d/%d/%v",
			restored.step, restored.stepsLeft, restored.doneSent, app.step, app.stepsLeft, app.doneSent)
	}
	if again := restored.SnapshotAppend(nil); !bytes.Equal(again, snap) {
		t.Fatal("re-snapshot differs")
	}
	// The replacement finishes the chain from the checkpointed position:
	// exactly stepsLeft more reads, then the done report.
	h2 := newBaselineHarness(t, restored)
	before := app.stepsLeft
	if err := h2.loop.RunUntil(5 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if !restored.Done() {
		t.Fatal("restored chain never finished")
	}
	if ints := h2.rt.VM().Stats().DiskInterrupts; ints != int64(before) {
		t.Fatalf("disk interrupts after restore = %d, want the %d remaining steps", ints, before)
	}
}

func TestParsecSnapshotRejectsCorrupt(t *testing.T) {
	app, err := NewParsecApp(ParsecProfile{Name: "t", ComputeBranches: 1_000_000, DiskReads: 2, BytesPerRead: 512}, "c")
	if err != nil {
		t.Fatal(err)
	}
	snap := app.SnapshotAppend(nil)
	for _, cut := range []int{0, 1, len(snap) - 1} {
		if err := app.RestoreSnapshot(snap[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if err := app.RestoreSnapshot(append(append([]byte{}, snap...), 0xFF)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}
