package apps

import (
	"encoding/binary"
	"fmt"
	"sort"

	"stopwatch/internal/guest"
	"stopwatch/internal/netsim"
	"stopwatch/internal/sim"
	"stopwatch/internal/transport"
)

// NFSOp enumerates the NFS operations in the paper's extracted mix.
type NFSOp int

// NFS operations (Sec. VII-C).
const (
	OpSetattr NFSOp = iota + 1
	OpLookup
	OpWrite
	OpGetattr
	OpRead
	OpCreate
)

func (op NFSOp) String() string {
	switch op {
	case OpSetattr:
		return "setattr"
	case OpLookup:
		return "lookup"
	case OpWrite:
		return "write"
	case OpGetattr:
		return "getattr"
	case OpRead:
		return "read"
	case OpCreate:
		return "create"
	default:
		return "?"
	}
}

// MixEntry pairs an op with its share of the workload.
type MixEntry struct {
	Op     NFSOp
	Weight float64
}

// PaperMix is the operation mix the paper extracted with nfsstat and fed to
// nhfsstone: 11.37% setattr, 24.07% lookup, 11.92% write, 7.93% getattr,
// 32.34% read, 12.37% create.
func PaperMix() []MixEntry {
	return []MixEntry{
		{OpSetattr, 11.37},
		{OpLookup, 24.07},
		{OpWrite, 11.92},
		{OpGetattr, 7.93},
		{OpRead, 32.34},
		{OpCreate, 12.37},
	}
}

// NFSRequest is the wire request descriptor.
type NFSRequest struct {
	Op    NFSOp
	Bytes int // payload for read/write
}

// NFSServer is the guest app of Fig. 6: an NFS server over the TCP-like
// transport. Disk behaviour per op is deterministic (cache behaviour is
// modeled by op counters, not randomness, to preserve replica determinism).
type NFSServer struct {
	tcp *transport.TCPServer

	pending map[uint64]*pendingNFS
	lookups int64 // every 4th lookup misses the name cache → disk read

	served uint64
}

type pendingNFS struct {
	conn     uint64
	respID   uint64
	respSize int
}

var _ guest.App = (*NFSServer)(nil)

// NewNFSServer builds the server with the given TCP window.
func NewNFSServer(window int) (*NFSServer, error) {
	srv, err := transport.NewTCPServer(window)
	if err != nil {
		return nil, err
	}
	s := &NFSServer{tcp: srv, pending: make(map[uint64]*pendingNFS)}
	srv.OnRequest = s.onRequest
	return s, nil
}

// Served reports completed operations.
func (s *NFSServer) Served() uint64 { return s.served }

// Boot implements guest.App.
func (s *NFSServer) Boot(ctx guest.Ctx) {}

// OnPacket implements guest.App.
func (s *NFSServer) OnPacket(ctx guest.Ctx, p guest.Payload) {
	s.tcp.HandleSegment(ctx, p.Src, p.Data)
}

func (s *NFSServer) onRequest(ctx guest.Ctx, src netsim.Addr, conn, respID uint64, req any) {
	r, ok := req.(NFSRequest)
	if !ok {
		return
	}
	p := &pendingNFS{conn: conn, respID: respID, respSize: 128}
	switch r.Op {
	case OpGetattr:
		// Attribute cache: compute only.
		ctx.Compute(40_000)
		s.respond(ctx, p)
	case OpLookup:
		ctx.Compute(60_000)
		s.lookups++
		if s.lookups%4 == 0 {
			// Name-cache miss: directory block from disk.
			s.pending[respID] = p
			ctx.DiskRead(fmt.Sprintf("nfs:%d", respID), 4096)
		} else {
			s.respond(ctx, p)
		}
	case OpRead:
		bytes := r.Bytes
		if bytes <= 0 {
			bytes = 8192
		}
		p.respSize = bytes
		ctx.Compute(80_000)
		s.pending[respID] = p
		ctx.DiskRead(fmt.Sprintf("nfs:%d", respID), bytes)
	case OpWrite:
		bytes := r.Bytes
		if bytes <= 0 {
			bytes = 8192
		}
		ctx.Compute(80_000)
		s.pending[respID] = p
		ctx.DiskWrite(fmt.Sprintf("nfs:%d", respID), bytes)
	case OpSetattr:
		ctx.Compute(50_000)
		s.pending[respID] = p
		ctx.DiskWrite(fmt.Sprintf("nfs:%d", respID), 512)
	case OpCreate:
		ctx.Compute(70_000)
		s.pending[respID] = p
		ctx.DiskWrite(fmt.Sprintf("nfs:%d", respID), 4096)
	}
}

func (s *NFSServer) respond(ctx guest.Ctx, p *pendingNFS) {
	s.served++
	_ = s.tcp.Respond(ctx, p.conn, p.respID, p.respSize)
}

// OnDiskDone implements guest.App.
func (s *NFSServer) OnDiskDone(ctx guest.Ctx, d guest.DiskDone) {
	var respID uint64
	if _, err := fmt.Sscanf(d.Tag, "nfs:%d", &respID); err != nil {
		return
	}
	p, ok := s.pending[respID]
	if !ok {
		return
	}
	delete(s.pending, respID)
	ctx.Compute(20_000)
	s.respond(ctx, p)
}

// OnTimer implements guest.App.
func (s *NFSServer) OnTimer(ctx guest.Ctx, tag string) {
	s.tcp.HandleTimer(ctx, tag)
}

// SnapshotAppend implements guest.Snapshotter: the served and lookup
// counters (the name-cache model is the lookup count mod 4, so the
// counter IS the cache state), the ops waiting on disk and the TCP
// server's connection state. Pending entries are emitted in respID order
// so identical replicas serialize identically — which lets long-lived NFS
// guests replace via checkpoint instead of full-journal replay.
func (s *NFSServer) SnapshotAppend(buf []byte) []byte {
	buf = binary.AppendUvarint(buf, s.served)
	buf = binary.AppendVarint(buf, s.lookups)
	ids := make([]uint64, 0, len(s.pending))
	for id := range s.pending {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	buf = binary.AppendUvarint(buf, uint64(len(ids)))
	for _, id := range ids {
		p := s.pending[id]
		buf = binary.AppendUvarint(buf, id)
		buf = binary.AppendUvarint(buf, p.conn)
		buf = binary.AppendUvarint(buf, p.respID)
		buf = binary.AppendVarint(buf, int64(p.respSize))
	}
	return s.tcp.AppendState(buf)
}

// RestoreSnapshot implements guest.Snapshotter.
func (s *NFSServer) RestoreSnapshot(data []byte) error {
	bad := func(what string) error {
		return fmt.Errorf("%w: nfs server snapshot: bad %s", ErrApp, what)
	}
	served, n := binary.Uvarint(data)
	if n <= 0 {
		return bad("served counter")
	}
	data = data[n:]
	lookups, n := binary.Varint(data)
	if n <= 0 {
		return bad("lookup counter")
	}
	data = data[n:]
	count, n := binary.Uvarint(data)
	if n <= 0 {
		return bad("pending count")
	}
	data = data[n:]
	pending := make(map[uint64]*pendingNFS, count)
	for i := uint64(0); i < count; i++ {
		id, n := binary.Uvarint(data)
		if n <= 0 {
			return bad("pending id")
		}
		data = data[n:]
		p := &pendingNFS{}
		if p.conn, n = binary.Uvarint(data); n <= 0 {
			return bad("pending conn")
		}
		data = data[n:]
		if p.respID, n = binary.Uvarint(data); n <= 0 {
			return bad("pending respID")
		}
		data = data[n:]
		var v int64
		if v, n = binary.Varint(data); n <= 0 {
			return bad("pending respSize")
		}
		p.respSize = int(v)
		data = data[n:]
		pending[id] = p
	}
	rest, err := s.tcp.RestoreState(data)
	if err != nil {
		return err
	}
	if len(rest) != 0 {
		return bad("trailing bytes")
	}
	s.served = served
	s.lookups = lookups
	s.pending = pending
	return nil
}

var _ guest.Snapshotter = (*NFSServer)(nil)

// NFSLoadGen is the fabric-side nhfsstone stand-in: N client processes
// sharing a constant aggregate op rate against one NFS guest, drawing ops
// from the mix. It records per-op latency.
type NFSLoadGen struct {
	loop    *sim.Loop
	rng     *sim.Rand
	client  *transport.Client
	svc     netsim.Addr
	mix     []MixEntry
	totalW  float64
	conns   []uint64
	gap     sim.Time
	stopAt  sim.Time
	started bool

	// cfgSizes holds {readBytes, writeBytes}.
	cfgSizes [2]int

	issued    uint64
	completed uint64
	latencies []sim.Time
}

// NFSLoadGenConfig parameterizes the generator.
type NFSLoadGenConfig struct {
	// Processes is the number of client processes (paper: 5).
	Processes int
	// SlotsPerProcess models the kernel NFS client's asynchronous RPC
	// slots: each process can have this many operations outstanding
	// (default 8). One connection per slot; nhfsstone's constant offered
	// rate is only sustainable with RPC concurrency.
	SlotsPerProcess int
	// RatePerSec is the constant aggregate op rate (paper: 25..400).
	RatePerSec float64
	// ReadBytes / WriteBytes are the payload sizes.
	ReadBytes, WriteBytes int
}

// NewNFSLoadGen creates the generator; Start begins issuing.
func NewNFSLoadGen(loop *sim.Loop, rng *sim.Rand, client *transport.Client, svc netsim.Addr, mix []MixEntry, cfg NFSLoadGenConfig) (*NFSLoadGen, error) {
	if loop == nil || rng == nil || client == nil {
		return nil, fmt.Errorf("%w: nfs loadgen needs loop, rng, client", ErrApp)
	}
	if cfg.Processes <= 0 || cfg.RatePerSec <= 0 || len(mix) == 0 {
		return nil, fmt.Errorf("%w: nfs loadgen config %+v", ErrApp, cfg)
	}
	if cfg.ReadBytes <= 0 {
		cfg.ReadBytes = 8192
	}
	if cfg.WriteBytes <= 0 {
		cfg.WriteBytes = 8192
	}
	if cfg.SlotsPerProcess <= 0 {
		cfg.SlotsPerProcess = 8
	}
	g := &NFSLoadGen{
		loop:   loop,
		rng:    rng,
		client: client,
		svc:    svc,
		mix:    mix,
		gap:    sim.Time(float64(sim.Second) / cfg.RatePerSec),
	}
	for _, m := range mix {
		g.totalW += m.Weight
	}
	g.cfgSizes = [2]int{cfg.ReadBytes, cfg.WriteBytes}
	for i := 0; i < cfg.Processes*cfg.SlotsPerProcess; i++ {
		g.conns = append(g.conns, client.Connect(svc, nil))
	}
	return g, nil
}

// Start begins issuing ops until the given time.
func (g *NFSLoadGen) Start(until sim.Time) {
	if g.started {
		return
	}
	g.started = true
	g.stopAt = until
	g.scheduleNext()
}

func (g *NFSLoadGen) scheduleNext() {
	g.loop.After(g.gap, "nfs:op", func() {
		if g.loop.Now() >= g.stopAt {
			return
		}
		g.issueOne()
		g.scheduleNext()
	})
}

func (g *NFSLoadGen) issueOne() {
	op := g.drawOp()
	req := NFSRequest{Op: op}
	switch op {
	case OpRead:
		req.Bytes = g.cfgSizes[0]
	case OpWrite:
		req.Bytes = g.cfgSizes[1]
	}
	conn := g.conns[int(g.issued)%len(g.conns)]
	g.issued++
	start := g.loop.Now()
	_ = g.client.Request(conn, req, func(r transport.Response) {
		g.completed++
		g.latencies = append(g.latencies, g.loop.Now()-start)
	})
}

func (g *NFSLoadGen) drawOp() NFSOp {
	x := g.rng.Float64() * g.totalW
	for _, m := range g.mix {
		if x < m.Weight {
			return m.Op
		}
		x -= m.Weight
	}
	return g.mix[len(g.mix)-1].Op
}

// Issued and Completed report op counters.
func (g *NFSLoadGen) Issued() uint64 { return g.issued }

// Completed reports finished ops.
func (g *NFSLoadGen) Completed() uint64 { return g.completed }

// Latencies returns per-op latencies.
func (g *NFSLoadGen) Latencies() []sim.Time {
	out := make([]sim.Time, len(g.latencies))
	copy(out, g.latencies)
	return out
}
