package apps

import (
	"encoding/binary"
	"fmt"

	"stopwatch/internal/guest"
	"stopwatch/internal/netsim"
	"stopwatch/internal/sim"
	"stopwatch/internal/vtime"
)

// ProbeApp is the attacker VM of Fig. 4: it receives a packet stream and
// records the guest-visible time of every delivery. Under StopWatch that
// clock is virtual time shaped by median delivery; under the baseline it is
// (scaled) host real time. The attacker's statistic is the inter-delivery
// gap distribution.
type ProbeApp struct {
	// HandlerCompute is the branch cost of the measurement handler.
	HandlerCompute int64

	times []vtime.Virtual
}

var _ guest.App = (*ProbeApp)(nil)

// NewProbeApp builds an attacker probe.
func NewProbeApp() *ProbeApp {
	return &ProbeApp{HandlerCompute: 10_000}
}

// Boot implements guest.App.
func (a *ProbeApp) Boot(ctx guest.Ctx) {}

// OnPacket implements guest.App: timestamp the delivery.
func (a *ProbeApp) OnPacket(ctx guest.Ctx, p guest.Payload) {
	a.times = append(a.times, ctx.Clock().Now())
	ctx.Compute(a.HandlerCompute)
}

// OnDiskDone implements guest.App (unused).
func (a *ProbeApp) OnDiskDone(ctx guest.Ctx, d guest.DiskDone) {}

// OnTimer implements guest.App (unused).
func (a *ProbeApp) OnTimer(ctx guest.Ctx, tag string) {}

// DeliveryTimes returns the recorded delivery clock readings.
func (a *ProbeApp) DeliveryTimes() []vtime.Virtual {
	out := make([]vtime.Virtual, len(a.times))
	copy(out, a.times)
	return out
}

// InterDeliveryGaps returns successive differences of the recorded times,
// as float64 nanoseconds — the attacker's observable.
func (a *ProbeApp) InterDeliveryGaps() []float64 {
	if len(a.times) < 2 {
		return nil
	}
	out := make([]float64, 0, len(a.times)-1)
	for i := 1; i < len(a.times); i++ {
		out = append(out, float64(a.times[i]-a.times[i-1]))
	}
	return out
}

// BeaconApp is a self-driving load generator: a periodic burst of compute,
// disk and network activity, standing in for a victim VM continuously
// serving content. Period and sizes are in guest time, so all replicas
// behave identically.
type BeaconApp struct {
	// Period between bursts (guest clock).
	Period vtime.Virtual
	// Compute per burst.
	Compute int64
	// DiskBytes read per burst.
	DiskBytes int
	// Sink receives a small packet per burst ("" disables).
	Sink netsim.Addr

	bursts int64
}

var _ guest.App = (*BeaconApp)(nil)

// NewBeaconApp returns a beacon with the given burst period.
func NewBeaconApp(period vtime.Virtual) *BeaconApp {
	return &BeaconApp{
		Period:    period,
		Compute:   2_000_000,
		DiskBytes: 64 << 10,
	}
}

// Boot implements guest.App.
func (a *BeaconApp) Boot(ctx guest.Ctx) {
	ctx.SetTimer(0, "burst")
}

// OnTimer implements guest.App: run one burst and re-arm.
func (a *BeaconApp) OnTimer(ctx guest.Ctx, tag string) {
	if tag != "burst" {
		return
	}
	a.bursts++
	ctx.Compute(a.Compute)
	if a.DiskBytes > 0 {
		ctx.DiskRead("beacon", a.DiskBytes)
	}
	if a.Sink != "" {
		ctx.Send(a.Sink, 256, a.bursts)
	}
	ctx.SetTimer(a.Period, "burst")
}

// OnPacket implements guest.App (unused).
func (a *BeaconApp) OnPacket(ctx guest.Ctx, p guest.Payload) {}

// OnDiskDone implements guest.App (unused).
func (a *BeaconApp) OnDiskDone(ctx guest.Ctx, d guest.DiskDone) {}

// Bursts reports completed bursts.
func (a *BeaconApp) Bursts() int64 { return a.bursts }

// SnapshotAppend/RestoreSnapshot implement guest.Snapshotter: the burst
// counter is the only mutable state (period, sizes and sink are
// configuration the factory rebuilds identically), so beacon guests can be
// checkpointed and restored without replaying their lifetime.
func (a *BeaconApp) SnapshotAppend(buf []byte) []byte {
	return binary.AppendVarint(buf, a.bursts)
}

// RestoreSnapshot implements guest.Snapshotter.
func (a *BeaconApp) RestoreSnapshot(data []byte) error {
	bursts, n := binary.Varint(data)
	if n <= 0 || n != len(data) {
		return fmt.Errorf("beacon snapshot: bad bursts varint")
	}
	a.bursts = bursts
	return nil
}

var _ guest.Snapshotter = (*BeaconApp)(nil)

// ProbeSource drives the attacker's inbound packet stream from outside the
// cloud (e.g. a colluder, or just ambient traffic the attacker watches).
type ProbeSource struct {
	loop *sim.Loop
	rng  *sim.Rand
	net  *netsim.Network
	src  netsim.Addr
	dst  netsim.Addr
	gap  sim.Time

	sent   uint64
	stopAt sim.Time

	// Constant, when true, emits at exactly the mean gap (the attacker's
	// best probing strategy: inter-delivery gaps then measure pure system
	// delay variation). False gives Poisson arrivals.
	Constant bool

	// OnSend observes each emission (1-based sequence, emission time).
	OnSend func(seq uint64, at sim.Time)
}

// NewProbeSource sends packets from src to dst with exponential gaps of the
// given mean.
func NewProbeSource(net *netsim.Network, loop *sim.Loop, rng *sim.Rand, src, dst netsim.Addr, meanGap sim.Time) *ProbeSource {
	return &ProbeSource{loop: loop, rng: rng, net: net, src: src, dst: dst, gap: meanGap}
}

// Start begins the stream until the given time.
func (p *ProbeSource) Start(until sim.Time) {
	p.stopAt = until
	p.next()
}

func (p *ProbeSource) next() {
	gap := p.gap
	if !p.Constant {
		gap = p.rng.ExpDur(p.gap)
	}
	p.loop.After(gap, "probe:send", func() {
		if p.loop.Now() >= p.stopAt {
			return
		}
		p.sent++
		if p.OnSend != nil {
			p.OnSend(p.sent, p.loop.Now())
		}
		p.net.Send(&netsim.Packet{Src: p.src, Dst: p.dst, Size: 256, Kind: "probe", Payload: p.sent})
		p.next()
	})
}

// Sent reports emitted probe packets.
func (p *ProbeSource) Sent() uint64 { return p.sent }
