package apps

import (
	"encoding/binary"
	"fmt"

	"stopwatch/internal/guest"
	"stopwatch/internal/netsim"
)

// ParsecProfile is a calibrated compute/disk profile standing in for one
// PARSEC application (Sec. VII-D). The profile runs as a serial chain of
// compute bursts separated by synchronous disk reads — the structure that
// makes StopWatch's per-disk-interrupt Δd cost visible, which is exactly
// the correlation Fig. 7(b) reports.
type ParsecProfile struct {
	Name string
	// ComputeBranches is the total computation, spread evenly across the
	// chain (1e6 branches ≈ 1 ms at the default rate).
	ComputeBranches int64
	// DiskReads is the number of synchronous disk reads (the paper's disk
	// interrupt counts: Fig. 7(b)).
	DiskReads int
	// BytesPerRead is the size of each read.
	BytesPerRead int
	// BaselinePaperMS / StopWatchPaperMS record the paper's measured
	// runtimes (Fig. 7(a)) for reporting alongside ours.
	BaselinePaperMS, StopWatchPaperMS float64
}

// PaperParsecProfiles returns the five applications used in the paper,
// calibrated so the baseline runtimes land in the paper's regime with the
// Fig-7 experiment configuration (disk service ≈ 1.7 ms mean):
// compute = baseline_ms − reads·1.7ms.
func PaperParsecProfiles() []ParsecProfile {
	return []ParsecProfile{
		{Name: "ferret", ComputeBranches: 118_300_000, DiskReads: 31, BytesPerRead: 16 << 10, BaselinePaperMS: 171, StopWatchPaperMS: 350},
		{Name: "blackscholes", ComputeBranches: 112_400_000, DiskReads: 38, BytesPerRead: 16 << 10, BaselinePaperMS: 177, StopWatchPaperMS: 401},
		{Name: "canneal", ComputeBranches: 1_218_900_000, DiskReads: 183, BytesPerRead: 16 << 10, BaselinePaperMS: 1530, StopWatchPaperMS: 3230},
		{Name: "dedup", ComputeBranches: 3_231_900_000, DiskReads: 293, BytesPerRead: 16 << 10, BaselinePaperMS: 3730, StopWatchPaperMS: 5754},
		{Name: "streamcluster", ComputeBranches: 244_100_000, DiskReads: 27, BytesPerRead: 16 << 10, BaselinePaperMS: 290, StopWatchPaperMS: 382},
	}
}

// ParsecApp runs a profile to completion and reports "done" to a collector
// address; the harness measures wall time from start to the collector's
// receipt of that packet (via the egress median under StopWatch).
type ParsecApp struct {
	profile   ParsecProfile
	collector netsim.Addr

	step      int
	chunk     int64
	stepsLeft int
	doneSent  bool
}

var _ guest.App = (*ParsecApp)(nil)

// NewParsecApp builds a profile runner reporting to collector.
func NewParsecApp(p ParsecProfile, collector netsim.Addr) (*ParsecApp, error) {
	if p.DiskReads <= 0 || p.ComputeBranches < 0 || p.BytesPerRead <= 0 {
		return nil, fmt.Errorf("%w: parsec profile %+v", ErrApp, p)
	}
	if collector == "" {
		return nil, fmt.Errorf("%w: parsec needs a collector", ErrApp)
	}
	return &ParsecApp{
		profile:   p,
		collector: collector,
		chunk:     p.ComputeBranches / int64(p.DiskReads+1),
		stepsLeft: p.DiskReads,
	}, nil
}

// Boot implements guest.App: start the chain.
func (a *ParsecApp) Boot(ctx guest.Ctx) {
	ctx.Compute(a.chunk)
	a.next(ctx)
}

func (a *ParsecApp) next(ctx guest.Ctx) {
	if a.stepsLeft > 0 {
		a.stepsLeft--
		a.step++
		ctx.DiskRead(fmt.Sprintf("parsec:%d", a.step), a.profile.BytesPerRead)
		return
	}
	if !a.doneSent {
		a.doneSent = true
		ctx.Send(a.collector, 64, "done:"+a.profile.Name)
	}
}

// OnPacket implements guest.App (unused).
func (a *ParsecApp) OnPacket(ctx guest.Ctx, p guest.Payload) {}

// OnDiskDone implements guest.App: continue the chain.
func (a *ParsecApp) OnDiskDone(ctx guest.Ctx, d guest.DiskDone) {
	ctx.Compute(a.chunk)
	a.next(ctx)
}

// OnTimer implements guest.App (unused).
func (a *ParsecApp) OnTimer(ctx guest.Ctx, tag string) {}

// Done reports whether the workload finished.
func (a *ParsecApp) Done() bool { return a.doneSent }

// SnapshotAppend implements guest.Snapshotter: the chain position is the
// whole mutable state (profile, collector and chunk size are rebuilt by
// the factory), so a checkpoint is three integers — the cheapest possible
// replacement for the longest-running guests in the repo.
func (a *ParsecApp) SnapshotAppend(buf []byte) []byte {
	buf = binary.AppendVarint(buf, int64(a.step))
	buf = binary.AppendVarint(buf, int64(a.stepsLeft))
	done := uint64(0)
	if a.doneSent {
		done = 1
	}
	return binary.AppendUvarint(buf, done)
}

// RestoreSnapshot implements guest.Snapshotter.
func (a *ParsecApp) RestoreSnapshot(data []byte) error {
	bad := func(what string) error {
		return fmt.Errorf("%w: parsec snapshot: bad %s", ErrApp, what)
	}
	step, n := binary.Varint(data)
	if n <= 0 {
		return bad("step")
	}
	data = data[n:]
	stepsLeft, n := binary.Varint(data)
	if n <= 0 || stepsLeft < 0 {
		return bad("stepsLeft")
	}
	data = data[n:]
	done, n := binary.Uvarint(data)
	if n <= 0 || done > 1 {
		return bad("done flag")
	}
	if len(data[n:]) != 0 {
		return bad("trailing bytes")
	}
	a.step = int(step)
	a.stepsLeft = int(stepsLeft)
	a.doneSent = done == 1
	return nil
}

var _ guest.Snapshotter = (*ParsecApp)(nil)
