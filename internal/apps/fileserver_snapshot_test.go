package apps

import (
	"bytes"
	"testing"

	"stopwatch/internal/sim"
)

// midDownloadServer drives a TCP file server into a mid-response state
// (request parsed, disk reads outstanding) and returns it.
func midDownloadServer(t *testing.T) *FileServer {
	t.Helper()
	fs, err := NewFileServer(DefaultFileServerConfig())
	if err != nil {
		t.Fatal(err)
	}
	h := newBaselineHarness(t, fs)
	dl := NewDownloader(h.client)
	// 512KB = 8 sequential chunks: stopping the loop early leaves the
	// response mid-disk-phase.
	if err := dl.Fetch("svc:g", ModeTCP, 512<<10, nil); err != nil {
		t.Fatal(err)
	}
	if err := h.loop.RunUntil(40 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(fs.pending) == 0 {
		t.Fatal("harness did not leave a disk read outstanding; lower RunUntil")
	}
	return fs
}

func TestFileServerSnapshotRoundTrip(t *testing.T) {
	fs := midDownloadServer(t)
	snap := fs.SnapshotAppend(nil)

	restored, err := NewFileServer(DefaultFileServerConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.RestoreSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if restored.Served() != fs.Served() {
		t.Fatalf("served %d, want %d", restored.Served(), fs.Served())
	}
	if len(restored.pending) != len(fs.pending) {
		t.Fatalf("pending %d, want %d", len(restored.pending), len(fs.pending))
	}
	for id, want := range fs.pending {
		got, ok := restored.pending[id]
		if !ok {
			t.Fatalf("pending %d missing after restore", id)
		}
		if *got != *want {
			t.Fatalf("pending %d = %+v, want %+v", id, got, want)
		}
	}
	// The restored state must re-serialize byte-identically: that equality
	// is what replica lockstep rests on.
	if again := restored.SnapshotAppend(nil); !bytes.Equal(again, snap) {
		t.Fatalf("re-snapshot differs: %d vs %d bytes", len(again), len(snap))
	}
}

func TestFileServerSnapshotUDP(t *testing.T) {
	cfg := DefaultFileServerConfig()
	cfg.Mode = ModeUDP
	fs, err := NewFileServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	h := newBaselineHarness(t, fs)
	dl := NewDownloader(h.client)
	done := false
	if err := dl.Fetch("svc:g", ModeUDP, 100<<10, func(sim.Time) { done = true }); err != nil {
		t.Fatal(err)
	}
	if err := h.loop.RunUntil(30 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatal("UDP fetch did not complete")
	}
	snap := fs.SnapshotAppend(nil)
	restored, err := NewFileServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.RestoreSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if restored.Served() != fs.Served() {
		t.Fatalf("served %d, want %d", restored.Served(), fs.Served())
	}
	// The NACK-repair memory survives the round trip.
	if len(restored.udp.AppendState(nil)) != len(fs.udp.AppendState(nil)) {
		t.Fatal("udp state size changed across restore")
	}
	if again := restored.SnapshotAppend(nil); !bytes.Equal(again, snap) {
		t.Fatal("re-snapshot differs")
	}
}

func TestFileServerSnapshotRejectsCorrupt(t *testing.T) {
	fs := midDownloadServer(t)
	snap := fs.SnapshotAppend(nil)
	restored, err := NewFileServer(DefaultFileServerConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 1, len(snap) / 2, len(snap) - 1} {
		if err := restored.RestoreSnapshot(snap[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	if err := restored.RestoreSnapshot(append(append([]byte{}, snap...), 0xFF)); err == nil {
		t.Fatal("trailing garbage accepted")
	}
}
