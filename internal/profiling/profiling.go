// Package profiling provides the shared -cpuprofile/-memprofile plumbing
// for the repo's command-line drivers, so hot-path regressions seen in a
// scenario run are diagnosable without editing code.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins a CPU profile (if cpuPath is non-empty) and returns a stop
// function that finishes it and writes an end-of-run heap profile (if
// memPath is non-empty). The stop function is safe to call exactly once;
// with both paths empty it is a no-op.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("cpuprofile: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("memprofile: %w", err)
			}
			defer f.Close()
			runtime.GC() // materialize the end-of-run live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("memprofile: %w", err)
			}
		}
		return nil
	}, nil
}
