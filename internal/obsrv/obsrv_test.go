package obsrv

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"stopwatch/internal/apps"
	"stopwatch/internal/controlplane"
	"stopwatch/internal/core"
	"stopwatch/internal/guest"
	"stopwatch/internal/metrics"
	"stopwatch/internal/sim"
	"stopwatch/internal/vtime"
)

func newPlane(t *testing.T, hosts, capacity int, seed uint64) *controlplane.ControlPlane {
	t.Helper()
	cfg := core.DefaultClusterConfig()
	cfg.Seed = seed
	cfg.Hosts = hosts
	c, err := core.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := controlplane.New(c, controlplane.DefaultConfig(capacity))
	if err != nil {
		t.Fatal(err)
	}
	return cp
}

func beacon(period vtime.Virtual) func() guest.App {
	return func() guest.App {
		b := apps.NewBeaconApp(period)
		b.Sink = "sink"
		return b
	}
}

func httpGet(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// runScenario drives a small lifecycle: 3 admits, a rejected evict, a
// replica replacement, a real evict.
func runScenario(t *testing.T, cp *controlplane.ControlPlane) {
	t.Helper()
	for i := 0; i < 3; i++ {
		if _, _, err := cp.Admit(fmt.Sprintf("g%d", i), beacon(vtime.Virtual(5*sim.Millisecond))); err != nil {
			t.Fatal(err)
		}
	}
	if err := cp.Evict("nope"); err == nil {
		t.Fatal("expected rejection")
	}
	cp.Cluster().Start()
	if err := cp.Cluster().Run(200 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	g, _ := cp.Cluster().Guest("g0")
	dead := g.Replica(0).Host()
	g.Replica(0).Runtime().Stop()
	if err := cp.ReplaceReplica("g0", dead, nil); err != nil {
		t.Fatal(err)
	}
	if err := cp.Cluster().Run(2 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if err := cp.Evict("g2"); err != nil {
		t.Fatal(err)
	}
}

func TestMetricsAndOpsEndpoints(t *testing.T) {
	cp := newPlane(t, 9, 3, 7)
	reg := metrics.NewRegistry()
	cp.InstrumentMetrics(reg)
	s := New()
	s.Attach(cp, reg)
	if err := s.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	runScenario(t, cp)
	base := "http://" + s.Addr()

	code, body := httpGet(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d: %s", code, body)
	}
	for _, want := range []string{
		"# TYPE stopwatch_cp_ops_completed_total counter",
		`stopwatch_cp_ops_completed_total{kind="admit"} 3`,
		"stopwatch_cp_phase_latency_ns_bucket",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}

	code, body = httpGet(t, base+"/metrics.json")
	if code != http.StatusOK || !strings.Contains(body, `"name": "stopwatch_cp_ops_started_total"`) {
		t.Fatalf("/metrics.json = %d:\n%s", code, body)
	}

	// The published page is a snapshot: it reflects the last completion,
	// not a live read (the gauge of residents after the final evict is 2).
	if !strings.Contains(body, `"name": "stopwatch_cp_residents"`) {
		t.Fatalf("gauge family missing:\n%s", body)
	}

	var all []OpRecord
	code, body = httpGet(t, base+"/ops")
	if code != http.StatusOK {
		t.Fatalf("/ops = %d", code)
	}
	if err := json.Unmarshal([]byte(body), &all); err != nil {
		t.Fatalf("/ops not json: %v\n%s", err, body)
	}
	// 3 admits + rejected evict + replace + evict = 6 completed records.
	if len(all) != 6 {
		t.Fatalf("/ops returned %d records, want 6:\n%s", len(all), body)
	}
	for i, rec := range all {
		if rec.Seq != uint64(i+1) {
			t.Fatalf("records out of log order: %+v", all)
		}
	}

	var admits []OpRecord
	_, body = httpGet(t, base+"/ops?kind=admit")
	if err := json.Unmarshal([]byte(body), &admits); err != nil || len(admits) != 3 {
		t.Fatalf("kind filter: %v %s", err, body)
	}

	var g0 []OpRecord
	_, body = httpGet(t, base+"/ops?guest=g0")
	if err := json.Unmarshal([]byte(body), &g0); err != nil || len(g0) != 2 {
		t.Fatalf("guest filter want admit+replace for g0: %v %s", err, body)
	}

	var replaced []OpRecord
	_, body = httpGet(t, base+"/ops?kind=replace")
	if err := json.Unmarshal([]byte(body), &replaced); err != nil || len(replaced) != 1 {
		t.Fatalf("replace filter: %v %s", err, body)
	}
	dead := replaced[0].Machine
	if dead < 0 {
		t.Fatalf("replace record has no machine: %+v", replaced[0])
	}
	var byHost []OpRecord
	_, body = httpGet(t, base+fmt.Sprintf("/ops?host=%d", dead))
	if err := json.Unmarshal([]byte(body), &byHost); err != nil || len(byHost) != 1 {
		t.Fatalf("host filter: %v %s", err, body)
	}
	if len(replaced[0].Phases) == 0 || replaced[0].Phases[0].Phase != "pause" {
		t.Fatalf("replace record phases: %+v", replaced[0].Phases)
	}

	var ranged []OpRecord
	_, body = httpGet(t, base+"/ops?from=2&to=3")
	if err := json.Unmarshal([]byte(body), &ranged); err != nil || len(ranged) != 2 {
		t.Fatalf("seq range filter: %v %s", err, body)
	}

	// The rejected evict is marked.
	var rej []OpRecord
	_, body = httpGet(t, base+"/ops?kind=evict")
	if err := json.Unmarshal([]byte(body), &rej); err != nil || len(rej) != 2 {
		t.Fatalf("evict records: %v %s", err, body)
	}
	if !rej[0].Rejected || rej[0].Err == "" {
		t.Fatalf("rejected evict record: %+v", rej[0])
	}
}

func TestOpsStreamDumpAndFollow(t *testing.T) {
	cp := newPlane(t, 9, 3, 7)
	reg := metrics.NewRegistry()
	cp.InstrumentMetrics(reg)
	s := New()
	s.Attach(cp, reg)
	if err := s.Start("localhost:0"); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	base := "http://" + s.Addr()

	if _, _, err := cp.Admit("g0", beacon(vtime.Virtual(5*sim.Millisecond))); err != nil {
		t.Fatal(err)
	}

	// Dump mode: buffered lines, then EOF.
	code, body := httpGet(t, base+"/ops/stream")
	if code != http.StatusOK {
		t.Fatalf("/ops/stream = %d", code)
	}
	lines := strings.Split(strings.TrimSpace(body), "\n")
	// Admit emits started + 2 phases + completed.
	if len(lines) != 4 {
		t.Fatalf("dump returned %d lines, want 4:\n%s", len(lines), body)
	}
	var first streamEvent
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if first.Event != "started" || first.Seq != 1 || !strings.Contains(first.Op, "admit g0") {
		t.Fatalf("first stream line: %+v", first)
	}

	// Follow mode: a tailing client sees lines produced after it connected.
	resp, err := http.Get(base + "/ops/stream?follow=1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	got := make(chan string, 64)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			got <- sc.Text()
		}
		close(got)
	}()
	// Drain the backlog (4 lines) first.
	for i := 0; i < 4; i++ {
		select {
		case <-got:
		case <-time.After(5 * time.Second):
			t.Fatal("timed out draining stream backlog")
		}
	}
	if _, _, err := cp.Admit("g1", beacon(vtime.Virtual(5*sim.Millisecond))); err != nil {
		t.Fatal(err)
	}
	var tail []string
	for i := 0; i < 4; i++ {
		select {
		case line := <-got:
			tail = append(tail, line)
		case <-time.After(5 * time.Second):
			t.Fatalf("timed out tailing; got %v", tail)
		}
	}
	var ev streamEvent
	if err := json.Unmarshal([]byte(tail[len(tail)-1]), &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Event != "completed" || ev.Seq != 2 {
		t.Fatalf("tail end: %+v", ev)
	}
	// Closing the server terminates the follower.
	s.Close()
	select {
	case _, open := <-got:
		if open {
			// One more buffered line is fine; the channel must close soon.
			select {
			case _, open = <-got:
				if open {
					t.Fatal("follower still open after server close")
				}
			case <-time.After(5 * time.Second):
				t.Fatal("follower did not terminate on server close")
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("follower did not terminate on server close")
	}
}

func TestMetricsBeforeFirstPublish(t *testing.T) {
	s := New()
	if err := s.Start(""); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	code, _ := httpGet(t, "http://"+s.Addr()+"/metrics")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("unpublished /metrics = %d, want 503", code)
	}
}

func TestRefusesNonLoopback(t *testing.T) {
	s := New()
	if err := s.Start("0.0.0.0:0"); err == nil {
		s.Close()
		t.Fatal("0.0.0.0 accepted")
	}
	if err := s.Start("example.com:80"); err == nil {
		s.Close()
		t.Fatal("non-loopback hostname accepted")
	}
}
