// Package obsrv is the observability plane's HTTP surface: a localhost-only
// server exposing the metrics registry as a Prometheus text page
// (/metrics) and canonical JSON (/metrics.json), the completed-operations
// log as a filterable query API (/ops), and the live operation event
// stream as an NDJSON tail (/ops/stream).
//
// Determinism contract: the simulation is single-threaded and must stay
// byte-replayable with the server enabled. All mutation happens on the sim
// thread — the Watch subscriber Attach installs appends op records and
// stream lines under a mutex and publishes immutable page snapshots
// through an atomic pointer. HTTP handlers only ever read those published
// snapshots and copied records; they never touch the live registry, pool,
// or cluster. Serving traffic therefore cannot perturb a run: op-log
// digests are byte-identical with and without -listen.
package obsrv

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"stopwatch/internal/controlplane"
	"stopwatch/internal/metrics"
)

// PhaseStamp is one barrier milestone on an op record.
type PhaseStamp struct {
	Phase string `json:"phase"`
	At    int64  `json:"at"`
}

// OpRecord is one completed operation as served by /ops. Records are
// appended at completion (OpCompleted / OpFailed), so the API serves the
// finalized log; in-flight ops appear once they finish.
type OpRecord struct {
	Seq    uint64 `json:"seq"`
	Parent uint64 `json:"parent,omitempty"`
	Kind   string `json:"kind"`
	Op     string `json:"op"`
	// Machine is the host-scoped op's machine (a replace's dead host, a
	// drain/fail/evacuate/repair target); -1 for guest-only ops.
	Machine   int          `json:"machine"`
	Guests    []string     `json:"guests,omitempty"`
	Submitted int64        `json:"submitted"`
	Completed int64        `json:"completed"`
	Retries   int          `json:"retries,omitempty"`
	Phases    []PhaseStamp `json:"phases,omitempty"`
	Err       string       `json:"err,omitempty"`
	Rejected  bool         `json:"rejected,omitempty"`
}

// streamEvent is one NDJSON line on /ops/stream.
type streamEvent struct {
	Event string `json:"event"`
	Seq   uint64 `json:"seq"`
	Op    string `json:"op"`
	Phase string `json:"phase,omitempty"`
	At    int64  `json:"at"`
	Err   string `json:"err,omitempty"`
}

// pages is one immutable published snapshot of the registry.
type pages struct {
	prom string
	json string
}

// Server is the observability HTTP server. Construct with New, feed it
// with Attach (and Publish for a final snapshot), then Start.
type Server struct {
	page atomic.Pointer[pages]

	mu      sync.Mutex
	cond    *sync.Cond
	records []OpRecord
	stream  []string
	closed  bool

	ln  net.Listener
	srv *http.Server
}

// New builds an unstarted server.
func New() *Server {
	s := &Server{}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Attach subscribes the server to cp's operation event stream and takes
// reg as the snapshot source: every event becomes an NDJSON stream line,
// every completion appends an /ops record and republishes the metrics
// pages. Runs on the sim thread; returns the Watch cancel.
func (s *Server) Attach(cp *controlplane.ControlPlane, reg *metrics.Registry) (cancel func()) {
	return cp.Watch(func(ev controlplane.Event) {
		se := streamEvent{
			Event: ev.Kind.String(),
			Seq:   ev.Seq,
			Op:    ev.Op.String(),
			Phase: string(ev.Phase),
			At:    int64(ev.At),
		}
		if ev.Err != nil {
			se.Err = ev.Err.Error()
		}
		line, _ := json.Marshal(se)

		var rec *OpRecord
		if ev.Kind == controlplane.OpCompleted || ev.Kind == controlplane.OpFailed {
			if oc, ok := cp.Outcome(ev.Seq); ok {
				r := recordOf(oc)
				rec = &r
			}
			s.Publish(reg)
		}

		s.mu.Lock()
		s.stream = append(s.stream, string(line))
		if rec != nil {
			s.records = append(s.records, *rec)
		}
		s.mu.Unlock()
		s.cond.Broadcast()
	})
}

// Publish renders reg into an immutable snapshot served by /metrics and
// /metrics.json. Call from the sim thread (Attach does so at every op
// completion; call once more after the run for final gauge values).
func (s *Server) Publish(reg *metrics.Registry) {
	s.page.Store(&pages{prom: reg.Prom(), json: reg.JSON()})
}

// Start listens on addr and serves in the background. addr must be
// loopback ("127.0.0.1:0" picks a free port); anything else is refused —
// the observability plane is a localhost debugging surface, not a service.
func (s *Server) Start(addr string) error {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	host, _, err := net.SplitHostPort(addr)
	if err != nil {
		return fmt.Errorf("obsrv: bad listen address %q: %w", addr, err)
	}
	if host != "localhost" {
		ip := net.ParseIP(host)
		if ip == nil || !ip.IsLoopback() {
			return fmt.Errorf("obsrv: refusing non-loopback listen address %q", addr)
		}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/metrics.json", s.handleMetricsJSON)
	mux.HandleFunc("/ops", s.handleOps)
	mux.HandleFunc("/ops/stream", s.handleStream)
	s.ln = ln
	s.srv = &http.Server{Handler: mux}
	go func() { _ = s.srv.Serve(ln) }()
	return nil
}

// Addr returns the bound listen address (useful with port 0).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener and unblocks any /ops/stream followers.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.cond.Broadcast()
	if s.srv != nil {
		return s.srv.Close()
	}
	return nil
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	p := s.page.Load()
	if p == nil {
		http.Error(w, "no snapshot published yet", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(p.prom))
}

func (s *Server) handleMetricsJSON(w http.ResponseWriter, _ *http.Request) {
	p := s.page.Load()
	if p == nil {
		http.Error(w, "no snapshot published yet", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write([]byte(p.json))
}

// handleOps serves the completed-op log, filtered by query parameters:
//
//	from, to  inclusive Seq range
//	kind      op kind ("admit", "replace", ...)
//	guest     ops whose Guests list contains the id
//	host      ops targeting the machine (replace dead host, drain/fail/...)
func (s *Server) handleOps(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	var from, to uint64
	var err error
	if v := q.Get("from"); v != "" {
		if from, err = strconv.ParseUint(v, 10, 64); err != nil {
			http.Error(w, "bad from: "+err.Error(), http.StatusBadRequest)
			return
		}
	}
	if v := q.Get("to"); v != "" {
		if to, err = strconv.ParseUint(v, 10, 64); err != nil {
			http.Error(w, "bad to: "+err.Error(), http.StatusBadRequest)
			return
		}
	}
	host, hostSet := -1, false
	if v := q.Get("host"); v != "" {
		if host, err = strconv.Atoi(v); err != nil {
			http.Error(w, "bad host: "+err.Error(), http.StatusBadRequest)
			return
		}
		hostSet = true
	}
	kind, guest := q.Get("kind"), q.Get("guest")

	s.mu.Lock()
	out := make([]OpRecord, 0, len(s.records))
	for _, rec := range s.records {
		if from != 0 && rec.Seq < from {
			continue
		}
		if to != 0 && rec.Seq > to {
			continue
		}
		if kind != "" && rec.Kind != kind {
			continue
		}
		if hostSet && rec.Machine != host {
			continue
		}
		if guest != "" && !containsGuest(rec.Guests, guest) {
			continue
		}
		out = append(out, rec)
	}
	s.mu.Unlock()

	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(out)
}

// handleStream tails the operation event stream as NDJSON. By default it
// dumps the buffered lines and closes; with ?follow=1 it keeps the
// connection open and pushes new lines until the client disconnects or the
// server closes.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	follow := r.URL.Query().Get("follow") == "1"
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)

	// Unblock the cond wait when the client goes away.
	ctx := r.Context()
	if follow {
		go func() {
			<-ctx.Done()
			s.cond.Broadcast()
		}()
	}

	next := 0
	for {
		s.mu.Lock()
		for follow && next == len(s.stream) && !s.closed && ctx.Err() == nil {
			s.cond.Wait()
		}
		batch := s.stream[next:]
		next = len(s.stream)
		closed := s.closed
		s.mu.Unlock()

		var b strings.Builder
		for _, line := range batch {
			b.WriteString(line)
			b.WriteByte('\n')
		}
		if b.Len() > 0 {
			if _, err := w.Write([]byte(b.String())); err != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if !follow || closed || ctx.Err() != nil {
			return
		}
	}
}

func containsGuest(guests []string, id string) bool {
	for _, g := range guests {
		if g == id {
			return true
		}
	}
	return false
}

// machineOf extracts a host-scoped op's target machine; -1 for guest-only
// ops (admit, evict).
func machineOf(op controlplane.Op) int {
	switch op := op.(type) {
	case controlplane.ReplaceOp:
		return op.DeadHost
	case controlplane.DrainOp:
		return op.Machine
	case controlplane.UndrainOp:
		return op.Machine
	case controlplane.FailOp:
		return op.Machine
	case controlplane.EvacuateOp:
		return op.Machine
	case controlplane.RepairOp:
		return op.Machine
	default:
		return -1
	}
}

// recordOf freezes a completed outcome into the served record shape.
func recordOf(oc *controlplane.Outcome) OpRecord {
	r := OpRecord{
		Seq:       oc.Seq,
		Parent:    oc.Parent,
		Kind:      oc.Op.Kind().String(),
		Op:        oc.Op.String(),
		Machine:   machineOf(oc.Op),
		Submitted: int64(oc.Submitted),
		Completed: int64(oc.Completed),
		Retries:   oc.QuiesceRetries,
		Rejected:  oc.Rejected(),
	}
	if len(oc.Guests) > 0 {
		r.Guests = append([]string(nil), oc.Guests...)
	}
	for _, pt := range oc.Phases {
		r.Phases = append(r.Phases, PhaseStamp{Phase: string(pt.Phase), At: int64(pt.At)})
	}
	if oc.Err != nil {
		r.Err = oc.Err.Error()
	}
	return r
}
