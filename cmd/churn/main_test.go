package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// TestChurnScenarioHealthy is the acceptance scenario: ≥20 hosts, ≥30
// guests through the lifecycle, ≥3 injected replica failures with
// replacement, and host maintenance drains that evacuate live machines —
// every placement decision verified edge-disjoint, every surviving guest in
// strict lockstep at the end.
func TestChurnScenarioHealthy(t *testing.T) {
	args := []string{"-hosts", "21", "-duration", "15", "-arrival-rate", "4", "-failures", "3", "-seed", "7"}
	var out bytes.Buffer
	if err := run(args, &out); err != nil {
		t.Fatalf("churn run failed: %v\n%s", err, out.String())
	}
	text := out.String()
	admitted := extractInt(t, text, `admitted=(\d+)`)
	if admitted < 30 {
		t.Fatalf("admitted %d < 30 guests:\n%s", admitted, text)
	}
	if evicted := extractInt(t, text, `evicted=(\d+)`); evicted < 5 {
		t.Fatalf("evicted %d guests, churn too weak:\n%s", evicted, text)
	}
	if replaced := extractInt(t, text, `replaced=(\d+)`); replaced < 3 {
		t.Fatalf("replaced %d < 3 failures:\n%s", replaced, text)
	}
	if rf := extractInt(t, text, `replacement-failures=(\d+)`); rf != 0 {
		t.Fatalf("%d replacement failures:\n%s", rf, text)
	}
	if drains := extractInt(t, text, `drains=(\d+)`); drains != 2 {
		t.Fatalf("completed %d/2 maintenance drains:\n%s", drains, text)
	}
	if ev := extractInt(t, text, `evacuated=(\d+)`); ev == 0 {
		t.Fatalf("drains evacuated nothing:\n%s", text)
	}
	if ef := extractInt(t, text, `evacuation-failures=(\d+)`); ef != 0 {
		t.Fatalf("%d evacuation failures:\n%s", ef, text)
	}
	if de := extractInt(t, text, `drain-errors=(\d+)`); de != 0 {
		t.Fatalf("%d drain errors:\n%s", de, text)
	}
	if v := extractInt(t, text, `violations=(\d+)`); v != 0 {
		t.Fatalf("placement violations:\n%s", text)
	}
	if d := extractInt(t, text, `diverged=(\d+)`); d != 0 {
		t.Fatalf("diverged guests:\n%s", text)
	}
	if d := extractInt(t, text, `divergences=(\d+)`); d != 0 {
		t.Fatalf("synchrony divergences:\n%s", text)
	}
	if e := extractInt(t, text, `echoes=(\d+)`); e == 0 {
		t.Fatalf("client traffic never flowed:\n%s", text)
	}
}

// TestChurnSaturatedPackingSkipsInfeasible: at utilization 1.0 (6 hosts,
// capacity 1, both feasible triangles resident) a crashed replica has
// nowhere to go. The scenario must count the ErrNoFeasibleHost outcomes and
// keep running degraded instead of failing opaquely.
func TestChurnSaturatedPackingSkipsInfeasible(t *testing.T) {
	args := []string{"-hosts", "6", "-capacity", "1", "-duration", "10",
		"-arrival-rate", "4", "-failures", "2", "-drains", "0", "-seed", "1"}
	var out bytes.Buffer
	if err := run(args, &out); err != nil {
		t.Fatalf("saturated churn must degrade gracefully, got: %v\n%s", err, out.String())
	}
	text := out.String()
	if inf := extractInt(t, text, `infeasible-skipped=(\d+)`); inf != 2 {
		t.Fatalf("infeasible-skipped=%d, want both failures skipped:\n%s", inf, text)
	}
	if rf := extractInt(t, text, `replacement-failures=(\d+)`); rf != 0 {
		t.Fatalf("infeasible replacements reported as failures:\n%s", text)
	}
	if d := extractInt(t, text, `degraded-ok=(\d+)`); d == 0 {
		t.Fatalf("no degraded guest audited:\n%s", text)
	}
}

// TestChurnCrashEvacuation is the crashed-machine acceptance scenario: a
// whole machine's VMM dies mid-traffic, every resident guest is
// reconfigured onto its live quorum, evacuated through the replacement
// barrier and ends in lockstep — with zero synchrony divergences (the
// re-proposal round keeps unwedged deliveries in every replica's future)
// and no barrier abandoned to the quiescence leak (any MaxDrainAttempts
// abandonment would surface as a crash error and fail the run).
func TestChurnCrashEvacuation(t *testing.T) {
	args := []string{"-hosts", "21", "-duration", "15", "-arrival-rate", "4",
		"-failures", "0", "-drains", "0", "-crashes", "2", "-seed", "11"}
	var out bytes.Buffer
	if err := run(args, &out); err != nil {
		t.Fatalf("crash churn run failed: %v\n%s", err, out.String())
	}
	text := out.String()
	if got := extractInt(t, text, `crashes=(\d+)`); got != 2 {
		t.Fatalf("completed %d/2 crashes:\n%s", got, text)
	}
	if ev := extractInt(t, text, `crash-evacuated=(\d+)`); ev < 2 {
		t.Fatalf("crash evacuated %d < 2 residents (machine not multi-tenant?):\n%s", ev, text)
	}
	if ef := extractInt(t, text, `crash-evacuation-failures=(\d+)`); ef != 0 {
		t.Fatalf("%d crash evacuation failures:\n%s", ef, text)
	}
	if ce := extractInt(t, text, `crash-errors=(\d+)`); ce != 0 {
		t.Fatalf("%d crash errors:\n%s", ce, text)
	}
	if v := extractInt(t, text, `violations=(\d+)`); v != 0 {
		t.Fatalf("placement violations:\n%s", text)
	}
	if d := extractInt(t, text, `diverged=(\d+)`); d != 0 {
		t.Fatalf("diverged guests:\n%s", text)
	}
	if d := extractInt(t, text, `divergences=(\d+)`); d != 0 {
		t.Fatalf("synchrony divergences:\n%s", text)
	}
	if p := extractInt(t, text, `prefix-errors=(\d+)`); p != 0 {
		t.Fatalf("lockstep prefix errors:\n%s", text)
	}
}

// TestChurnCrashDeterminism: crash injection replays byte-identically.
func TestChurnCrashDeterminism(t *testing.T) {
	args := []string{"-hosts", "20", "-duration", "10", "-arrival-rate", "3",
		"-failures", "1", "-drains", "1", "-crashes", "2", "-seed", "5"}
	var a, b bytes.Buffer
	if err := run(args, &a); err != nil {
		t.Fatalf("first run: %v\n%s", err, a.String())
	}
	if err := run(args, &b); err != nil {
		t.Fatalf("second run: %v\n%s", err, b.String())
	}
	if a.String() != b.String() {
		t.Fatalf("runs differ:\n--- first ---\n%s\n--- second ---\n%s", a.String(), b.String())
	}
	if !strings.Contains(a.String(), "crash-errors=0") {
		t.Fatalf("crash errors:\n%s", a.String())
	}
}

// TestChurnDeterminism: the same seed replays bit-identically.
func TestChurnDeterminism(t *testing.T) {
	args := []string{"-hosts", "20", "-duration", "8", "-arrival-rate", "3", "-failures", "2", "-seed", "3"}
	var a, b bytes.Buffer
	if err := run(args, &a); err != nil {
		t.Fatalf("first run: %v\n%s", err, a.String())
	}
	if err := run(args, &b); err != nil {
		t.Fatalf("second run: %v\n%s", err, b.String())
	}
	if a.String() != b.String() {
		t.Fatalf("runs differ:\n--- first ---\n%s\n--- second ---\n%s", a.String(), b.String())
	}
	if !strings.Contains(a.String(), "violations=0") {
		t.Fatalf("unexpected violations:\n%s", a.String())
	}
}

func TestParseRejectsNonsense(t *testing.T) {
	if _, err := parse([]string{"-hosts", "2"}); err == nil {
		t.Fatal("2 hosts accepted")
	}
	if _, err := parse([]string{"-arrival-rate", "0"}); err == nil {
		t.Fatal("zero arrival rate accepted")
	}
}

func extractInt(t *testing.T, text, pattern string) int {
	t.Helper()
	m := regexp.MustCompile(pattern).FindStringSubmatch(text)
	if m == nil {
		t.Fatalf("pattern %q not found in:\n%s", pattern, text)
	}
	n, err := strconv.Atoi(m[1])
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestChurnAutodetectPipeline is the detector acceptance scenario: machine
// crashes are data-plane kills only — no scripted FailHost call exists on
// this path — and the control plane's stall detector must notice each dead
// VMM, auto-submit the FailOp and chain the evacuation, ending with every
// machine recovered, zero divergences, and the op log byte-identical
// across runs with the same seed.
func TestChurnAutodetectPipeline(t *testing.T) {
	args := []string{"-hosts", "21", "-duration", "15", "-arrival-rate", "4",
		"-failures", "0", "-drains", "0", "-crashes", "2", "-seed", "11", "-autodetect"}
	var a, b bytes.Buffer
	if err := run(args, &a); err != nil {
		t.Fatalf("autodetect churn run failed: %v\n%s", err, a.String())
	}
	text := a.String()
	if got := extractInt(t, text, `crashes=(\d+)`); got != 2 {
		t.Fatalf("completed %d/2 detector-driven crashes:\n%s", got, text)
	}
	if det := extractInt(t, text, `auto-detected=(\d+)`); det != 2 {
		t.Fatalf("auto-detected %d/2 machine deaths:\n%s", det, text)
	}
	if ce := extractInt(t, text, `crash-errors=(\d+)`); ce != 0 {
		t.Fatalf("%d crash errors:\n%s", ce, text)
	}
	if ev := extractInt(t, text, `crash-evacuated=(\d+)`); ev == 0 {
		t.Fatalf("detector pipeline evacuated nothing:\n%s", text)
	}
	if v := extractInt(t, text, `violations=(\d+)`); v != 0 {
		t.Fatalf("placement violations:\n%s", text)
	}
	if d := extractInt(t, text, `diverged=(\d+)`); d != 0 {
		t.Fatalf("diverged guests:\n%s", text)
	}
	if d := extractInt(t, text, `divergences=(\d+)`); d != 0 {
		t.Fatalf("synchrony divergences:\n%s", text)
	}
	if p := extractInt(t, text, `prefix-errors=(\d+)`); p != 0 {
		t.Fatalf("lockstep prefix errors:\n%s", text)
	}
	// Every FailOp on the log was the detector's (the "fails=N" ops all
	// carry auto-detected=N above), and the run replays byte-identically —
	// op-log digest included.
	if fails := extractInt(t, text, `fails=(\d+)`); fails != 2 {
		t.Fatalf("%d FailOps logged, want exactly the 2 detected ones:\n%s", fails, text)
	}
	if err := run(args, &b); err != nil {
		t.Fatalf("second run: %v\n%s", err, b.String())
	}
	if a.String() != b.String() {
		t.Fatalf("autodetect runs differ:\n--- first ---\n%s\n--- second ---\n%s", a.String(), b.String())
	}
}

// pinnedDigests are the op-log digests of the three seeded reference runs,
// recorded before the PR 5 scheduler rewrite and shared by every pin test:
// any fire-order, payload-lifetime, or observability-perturbation
// regression shows up here as a digest change.
var pinnedDigests = map[uint64]string{
	1: "9848d7026351fbb2",
	2: "63d26def2bc4586e",
	3: "8a2ef3d02025a98f",
}

func pinnedArgs(seed uint64, extra ...string) []string {
	args := []string{"-hosts", "10", "-capacity", "3", "-duration", "6",
		"-failures", "2", "-drains", "1", "-crashes", "1",
		"-seed", strconv.FormatUint(seed, 10)}
	return append(args, extra...)
}

func extractDigest(t *testing.T, text string) string {
	t.Helper()
	m := regexp.MustCompile(`op-log: digest=([0-9a-f]{16})`).FindStringSubmatch(text)
	if m == nil {
		t.Fatalf("no op-log digest in output:\n%s", text)
	}
	return m[1]
}

// TestChurnDigestsUnchangedAcrossSchedulerRewrite pins the op-log digests
// of three seeded runs to the values produced by the original
// container/heap scheduler (recorded before the pooled 4-ary heap, typed
// callbacks and zero-allocation packet pipeline landed in PR 5). The event
// loop, packet pooling and proposal-state recycling may change how the
// simulator allocates, but never what it computes: any fire-order or
// payload-lifetime regression shows up here as a digest change.
func TestChurnDigestsUnchangedAcrossSchedulerRewrite(t *testing.T) {
	for seed, digest := range pinnedDigests {
		var out bytes.Buffer
		if err := run(pinnedArgs(seed), &out); err != nil {
			t.Fatalf("seed %d: churn run failed: %v\n%s", seed, err, out.String())
		}
		if got := extractDigest(t, out.String()); got != digest {
			t.Errorf("seed %d: op-log digest %s, want %s (pre-rewrite baseline) — scheduler rewrite changed observable behavior",
				seed, got, digest)
		}
	}
}

// TestChurnDigestsUnchangedAcrossSharding is the sharded simulation's
// partition-invariance pin: the same three seeded runs, executed on one,
// two and four fabric shards, must produce byte-identical op-log digests —
// and K=1 must still match the historical single-loop baseline. The
// conservative-lookahead coordinator, the cross-shard inboxes and the
// (arrival-time, link-hash, link-seq) event keys exist precisely so the
// partition is unobservable; any cross-shard ordering leak lands here.
func TestChurnDigestsUnchangedAcrossSharding(t *testing.T) {
	for seed, digest := range pinnedDigests {
		for _, shards := range []int{1, 2, 4} {
			var out bytes.Buffer
			args := pinnedArgs(seed, "-shards", fmt.Sprint(shards))
			if err := run(args, &out); err != nil {
				t.Fatalf("seed %d shards %d: churn run failed: %v\n%s", seed, shards, err, out.String())
			}
			if got := extractDigest(t, out.String()); got != digest {
				t.Errorf("seed %d shards %d: op-log digest %s, want %s — the shard partition leaked into the schedule",
					seed, shards, got, digest)
			}
		}
	}
}

// TestChurnDigestsUnchangedWithObservability is the observability plane's
// non-perturbation pin: the same three seeded runs, now with the metrics
// registry instrumenting both planes, the localhost HTTP server attached to
// the event stream, and the end-of-run snapshot written out — and the
// op-log digests must still be byte-identical to the historical baseline.
// Instrumentation observes; it never feeds back into scheduling or RNG.
func TestChurnDigestsUnchangedWithObservability(t *testing.T) {
	for seed, digest := range pinnedDigests {
		outFile := filepath.Join(t.TempDir(), "metrics.json")
		args := pinnedArgs(seed, "-listen", "127.0.0.1:0", "-metrics-out", outFile)
		var out bytes.Buffer
		if err := run(args, &out); err != nil {
			t.Fatalf("seed %d: instrumented churn run failed: %v\n%s", seed, err, out.String())
		}
		if got := extractDigest(t, out.String()); got != digest {
			t.Errorf("seed %d: instrumented op-log digest %s, want %s — observability perturbed the run",
				seed, got, digest)
		}
		if _, err := os.Stat(outFile); err != nil {
			t.Errorf("seed %d: metrics snapshot not written: %v", seed, err)
		}
	}
}

// TestChurnMetricsGolden pins the canonical end-of-run metrics snapshot of
// each seeded reference run byte-for-byte. The snapshot folds in both
// planes — op counts, phase latency histograms, packet counters, proposal
// latency, disk telemetry — so any drift in what the simulation computes
// (not just the op log) lands here. Regenerate with
// UPDATE_METRICS_GOLDEN=1 go test ./cmd/churn -run Golden.
func TestChurnMetricsGolden(t *testing.T) {
	for seed := range pinnedDigests {
		outFile := filepath.Join(t.TempDir(), "metrics.json")
		var out bytes.Buffer
		if err := run(pinnedArgs(seed, "-metrics-out", outFile), &out); err != nil {
			t.Fatalf("seed %d: churn run failed: %v\n%s", seed, err, out.String())
		}
		got, err := os.ReadFile(outFile)
		if err != nil {
			t.Fatal(err)
		}
		golden := filepath.Join("testdata", fmt.Sprintf("metrics_seed%d.golden.json", seed))
		if os.Getenv("UPDATE_METRICS_GOLDEN") == "1" {
			if err := os.WriteFile(golden, got, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(golden)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("seed %d: metrics snapshot drifted from %s\n--- got ---\n%s\n--- want ---\n%s",
				seed, golden, got, want)
		}
	}
}

// TestChurnDigestsUnchangedWithCheckpointing is the checkpointed journal's
// non-perturbation pin: the same three seeded runs with periodic journal
// checkpoints (and hence truncated replay on every replacement) must produce
// op-log digests byte-identical to the historical baseline. A checkpoint
// captures what the replicas already agree on; restoring from it instead of
// replaying a lifetime must be unobservable in what the cloud computes.
func TestChurnDigestsUnchangedWithCheckpointing(t *testing.T) {
	for seed, digest := range pinnedDigests {
		var out bytes.Buffer
		args := pinnedArgs(seed, "-checkpoint-interval", "1000000")
		if err := run(args, &out); err != nil {
			t.Fatalf("seed %d: checkpointed churn run failed: %v\n%s", seed, err, out.String())
		}
		text := out.String()
		if got := extractDigest(t, text); got != digest {
			t.Errorf("seed %d: checkpointed op-log digest %s, want %s — checkpointing perturbed the run",
				seed, got, digest)
		}
		if ck := extractInt(t, text, `checkpoints=(\d+)`); ck == 0 {
			t.Errorf("seed %d: no checkpoints taken:\n%s", seed, text)
		}
		if tr := extractInt(t, text, `truncated-records=(\d+)`); tr == 0 {
			t.Errorf("seed %d: checkpoints never truncated the journal:\n%s", seed, text)
		}
	}
}

// TestChurnMigrateUnblocksSaturatedPacking: on 7 hosts at capacity 3 the
// edge-disjointness constraint, not capacity, is what rejects admissions —
// exactly the regime where moving one blocking replica opens a triangle.
// With -migrate the planner must complete migrations, admit strictly more
// tenants than the hard-rejecting baseline, and keep every placement
// invariant and lockstep audit clean.
func TestChurnMigrateUnblocksSaturatedPacking(t *testing.T) {
	args := []string{"-hosts", "7", "-capacity", "3", "-duration", "10",
		"-arrival-rate", "6", "-failures", "0", "-drains", "0", "-crashes", "0", "-seed", "1"}
	var base bytes.Buffer
	if err := run(args, &base); err != nil {
		t.Fatalf("baseline run failed: %v\n%s", err, base.String())
	}
	var out bytes.Buffer
	if err := run(append(args, "-migrate"), &out); err != nil {
		t.Fatalf("migrate run failed: %v\n%s", err, out.String())
	}
	text := out.String()
	planned := extractInt(t, text, `planned=(\d+)`)
	completed := extractInt(t, text, `completed=(\d+)`)
	if planned == 0 || completed == 0 {
		t.Fatalf("planner never migrated (planned=%d completed=%d):\n%s", planned, completed, text)
	}
	if failed := extractInt(t, text, `failed=(\d+)`); failed != 0 {
		t.Fatalf("%d migrations failed:\n%s", failed, text)
	}
	baseAdmitted := extractInt(t, base.String(), `admitted=(\d+)`)
	if admitted := extractInt(t, text, `admitted=(\d+)`); admitted <= baseAdmitted {
		t.Fatalf("migrate admitted %d <= baseline %d — plans unblocked nothing:\n%s", admitted, baseAdmitted, text)
	}
	if v := extractInt(t, text, `violations=(\d+)`); v != 0 {
		t.Fatalf("placement violations:\n%s", text)
	}
	if d := extractInt(t, text, `diverged=(\d+)`); d != 0 {
		t.Fatalf("diverged guests:\n%s", text)
	}
	if p := extractInt(t, text, `prefix-errors=(\d+)`); p != 0 {
		t.Fatalf("lockstep prefix errors:\n%s", text)
	}
}

// TestChurnLoadAware: the opt-in telemetry-driven admission path runs the
// full scenario clean — placement stays verified and lockstep holds — and
// announces its effective false-alarm budget.
func TestChurnLoadAware(t *testing.T) {
	var out bytes.Buffer
	if err := run(pinnedArgs(1, "-load-aware"), &out); err != nil {
		t.Fatalf("load-aware churn run failed: %v\n%s", err, out.String())
	}
	text := out.String()
	if !strings.Contains(text, "load-aware admission: on") {
		t.Fatalf("budget line missing:\n%s", text)
	}
	if v := extractInt(t, text, `violations=(\d+)`); v != 0 {
		t.Fatalf("placement violations:\n%s", text)
	}
	if d := extractInt(t, text, `diverged=(\d+)`); d != 0 {
		t.Fatalf("diverged guests:\n%s", text)
	}
}
