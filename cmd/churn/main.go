// Command churn exercises the online control plane through its unified
// operations API: a Poisson stream of tenant arrivals, departures, injected
// replica failures, host maintenance drains, and whole-machine crashes over
// tens of hosts, all in one deterministic simulation. Every mutation is a
// typed Op submitted through ControlPlane.Apply; the placement invariants
// are re-audited once per completed top-level operation, keyed off the
// event stream; and the run ends with a strict lockstep audit of every
// surviving guest plus a digest of the append-only operations log — byte-
// identical across runs with the same seed.
//
// With -autodetect the injected machine crashes are data-plane kills only:
// no FailHost call anywhere. The control plane's stall detector notices the
// dead VMM through missed proposal deadlines and drives the whole
// fail → reconfigure → evacuate pipeline itself.
//
// Usage:
//
//	churn -hosts 24 -capacity 4 -duration 30 -arrival-rate 2.5 -failures 4 -drains 2 -crashes 1
//	churn -hosts 21 -duration 15 -crashes 2 -autodetect
//	churn -hosts 10 -duration 10 -listen 127.0.0.1:8080 -metrics-out metrics.json -load-aware
package main

import (
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"sort"

	"stopwatch/internal/controlplane"
	"stopwatch/internal/core"
	"stopwatch/internal/guest"
	"stopwatch/internal/metrics"
	"stopwatch/internal/netsim"
	"stopwatch/internal/obsrv"
	"stopwatch/internal/placement"
	"stopwatch/internal/profiling"
	"stopwatch/internal/sim"
	"stopwatch/internal/vtime"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "churn:", err)
		os.Exit(1)
	}
}

// options parameterizes one churn scenario.
type options struct {
	hosts       int
	capacity    int
	duration    float64
	arrivalRate float64
	meanLife    float64
	failures    int
	drains      int
	crashes     int
	autodetect  bool
	pingEvery   float64
	seed        uint64
	shards      int
	cpuprofile  string
	memprofile  string
	listen      string
	metricsOut  string
	loadAware   bool
	ckptInstr   int64
	migrate     bool
}

func parse(args []string) (options, error) {
	fs := flag.NewFlagSet("churn", flag.ContinueOnError)
	o := options{}
	fs.IntVar(&o.hosts, "hosts", 24, "machines in the cloud")
	fs.IntVar(&o.capacity, "capacity", 4, "replicas per machine (placement capacity c)")
	fs.Float64Var(&o.duration, "duration", 30, "scenario length (simulated seconds)")
	fs.Float64Var(&o.arrivalRate, "arrival-rate", 2.5, "tenant arrivals per second (Poisson)")
	fs.Float64Var(&o.meanLife, "mean-lifetime", 8, "mean tenant lifetime (seconds, exponential)")
	fs.IntVar(&o.failures, "failures", 4, "replica failures to inject")
	fs.IntVar(&o.drains, "drains", 2, "host maintenance drains to inject (evacuate, later re-admit)")
	fs.IntVar(&o.crashes, "crashes", 1, "whole-machine VMM crashes to inject (fail, reconfigure, evacuate, repair)")
	fs.BoolVar(&o.autodetect, "autodetect", false, "kill crashed machines at the data plane only; the stall detector submits the FailOp")
	fs.Float64Var(&o.pingEvery, "ping-interval", 0.25, "client ping period per resident guest (seconds)")
	fs.Uint64Var(&o.seed, "seed", 1, "master seed")
	fs.IntVar(&o.shards, "shards", 1, "fabric shards (parallel simulation loops; the op-log digest is identical for every value)")
	fs.StringVar(&o.cpuprofile, "cpuprofile", "", "write a CPU profile of the run to this file")
	fs.StringVar(&o.memprofile, "memprofile", "", "write an end-of-run heap profile to this file")
	fs.StringVar(&o.listen, "listen", "", "serve /metrics, /metrics.json, /ops and /ops/stream on this loopback address (e.g. 127.0.0.1:8080; empty = off)")
	fs.StringVar(&o.metricsOut, "metrics-out", "", "write the end-of-run metrics snapshot as canonical JSON to this file")
	fs.BoolVar(&o.loadAware, "load-aware", false, "telemetry-driven admission: score and gate hosts by live Dom0 disk backlog (changes placement, and with it the op-log digest)")
	fs.Int64Var(&o.ckptInstr, "checkpoint-interval", 0, "instructions between journal checkpoints (multiple of the VMM exit quantum; 0 = off; bounds replacement replay without changing the op-log digest)")
	fs.BoolVar(&o.migrate, "migrate", false, "planned migration: turn infeasible admissions and re-homes into one-move MigrateOp plans (changes placement, and with it the op-log digest)")
	if err := fs.Parse(args); err != nil {
		return o, err
	}
	if o.hosts < 5 || o.duration <= 2 || o.arrivalRate <= 0 || o.meanLife <= 0 {
		return o, fmt.Errorf("implausible scenario: hosts=%d duration=%v rate=%v life=%v",
			o.hosts, o.duration, o.arrivalRate, o.meanLife)
	}
	if o.shards < 1 {
		return o, fmt.Errorf("shards must be >= 1, got %d", o.shards)
	}
	if o.ckptInstr < 0 {
		return o, fmt.Errorf("checkpoint-interval must be >= 0, got %d", o.ckptInstr)
	}
	return o, nil
}

// tenantApp is the guests' workload: periodic compute+disk+send bursts and
// an echo for every client ping, both gated on a virtual-time deadline so
// all replicas quiesce identically before the final lockstep audit.
type tenantApp struct {
	period   vtime.Virtual
	deadline vtime.Virtual
	sink     netsim.Addr

	bursts int64
	echoes int64
}

var _ guest.App = (*tenantApp)(nil)

func (a *tenantApp) Boot(ctx guest.Ctx) { ctx.SetTimer(0, "burst") }

func (a *tenantApp) OnTimer(ctx guest.Ctx, tag string) {
	if tag != "burst" || ctx.Clock().Now() >= a.deadline {
		return
	}
	a.bursts++
	ctx.Compute(400_000)
	if a.bursts%4 == 0 {
		ctx.DiskRead("t", 16<<10)
	}
	ctx.Send(a.sink, 200, a.bursts)
	ctx.SetTimer(a.period, "burst")
}

func (a *tenantApp) OnPacket(ctx guest.Ctx, p guest.Payload) {
	if ctx.Clock().Now() >= a.deadline {
		return
	}
	a.echoes++
	ctx.Compute(50_000)
	ctx.Send(p.Src, 128, a.echoes)
}

func (a *tenantApp) OnDiskDone(ctx guest.Ctx, d guest.DiskDone) {}

// SnapshotAppend/RestoreSnapshot implement guest.Snapshotter: the mutable
// state is just the two counters (period, deadline and sink are rebuilt
// identically by the factory), so checkpointed journals can truncate and a
// replacement can restore instead of replaying the tenant's whole lifetime.
func (a *tenantApp) SnapshotAppend(buf []byte) []byte {
	buf = binary.AppendVarint(buf, a.bursts)
	return binary.AppendVarint(buf, a.echoes)
}

func (a *tenantApp) RestoreSnapshot(data []byte) error {
	bursts, n := binary.Varint(data)
	if n <= 0 {
		return fmt.Errorf("tenant snapshot: bad bursts varint")
	}
	echoes, m := binary.Varint(data[n:])
	if m <= 0 || n+m != len(data) {
		return fmt.Errorf("tenant snapshot: bad echoes varint")
	}
	a.bursts, a.echoes = bursts, echoes
	return nil
}

var _ guest.Snapshotter = (*tenantApp)(nil)

// scenario holds the run's mutable driver state.
type scenario struct {
	o   options
	c   *core.Cluster
	cp  *controlplane.ControlPlane
	rng *sim.Rand
	out io.Writer

	trafficEnd sim.Time // pings and beacons stop here; drain follows
	end        sim.Time

	resident []string // sorted ids, the deterministic iteration order
	nextID   int

	// outcomes
	placementViolations int
	opsAudited          int
	failuresInjected    int
	replacementErrs     []error
	prefixErrs          []error
	echoesReceived      int
	// infeasible counts replacement and evacuation attempts the packing
	// could not place (ErrNoFeasibleHost): an expected outcome of a
	// saturated pool, skipped gracefully rather than reported as failures.
	infeasible int
	// drain/maintenance outcomes
	drainsStarted, drainsDone int
	drainErrs                 []error
	// whole-machine crash outcomes
	crashesStarted, crashesDone int
	crashErrs                   []error
	// checkpoint telemetry folded over evicted guests' journals; report()
	// adds the end-of-run residents
	ckpts, truncRecs int
	truncBytes       int64
}

// frozenSlots returns the slots of g's replicas whose guest execution is
// halted — crashed, or frozen by a move that was then abandoned (e.g. no
// non-conflicting capacity). Such a guest serves degraded on its live
// replicas, and audits must exclude the frozen ones, which necessarily
// trail. Reading the runtimes directly (instead of bookkeeping updated at
// operation completion) closes the window where a replica is already
// frozen but its lifecycle operation has not yet reported back.
func frozenSlots(g *core.Guest) []int {
	var slots []int
	for _, r := range g.Replicas() {
		if r.Runtime().Stopped() {
			slots = append(slots, r.Slot())
		}
	}
	return slots
}

// auditLockstep checks the guest's replica agreement: frozen replicas are
// excluded and flagged as degraded; strict escalates fully-live guests to
// the exact digest+count check (the end-of-run audit).
func auditLockstep(g *core.Guest, strict bool) (degraded bool, err error) {
	if dead := frozenSlots(g); len(dead) > 0 {
		return true, g.CheckLockstepPrefixExcluding(dead...)
	}
	if strict {
		return false, g.CheckLockstep()
	}
	return false, g.CheckLockstepPrefix()
}

func run(args []string, out io.Writer) error {
	o, err := parse(args)
	if err != nil {
		return err
	}
	stopProfiles, err := profiling.Start(o.cpuprofile, o.memprofile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfiles(); perr != nil {
			fmt.Fprintln(out, "profile:", perr)
		}
	}()
	ccfg := core.DefaultClusterConfig()
	ccfg.Seed = o.seed
	ccfg.Hosts = o.hosts
	ccfg.Shards = o.shards
	ccfg.VMM.CheckpointInstr = o.ckptInstr
	c, err := core.New(ccfg)
	if err != nil {
		return err
	}
	cp, err := controlplane.New(c, controlplane.DefaultConfig(o.capacity))
	if err != nil {
		return err
	}
	s := &scenario{
		o:          o,
		c:          c,
		cp:         cp,
		rng:        c.Source().Stream("churn-driver"),
		out:        out,
		trafficEnd: sim.FromSeconds(o.duration - 2),
		end:        sim.FromSeconds(o.duration),
	}
	// Observability plane: one registry fed by both planes, optionally
	// served over localhost HTTP and/or dumped as canonical JSON at the
	// end. Instrumentation observes the run (Watch events, passive
	// data-plane hooks, snapshot-time gauges) without perturbing it: the
	// op-log digest is byte-identical with and without these flags.
	var reg *metrics.Registry
	var srv *obsrv.Server
	if o.listen != "" || o.metricsOut != "" {
		reg = metrics.NewRegistry()
		cp.InstrumentMetrics(reg)
		c.InstrumentMetrics(reg)
	}
	if o.listen != "" {
		srv = obsrv.New()
		srv.Attach(cp, reg)
		if err := srv.Start(o.listen); err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(out, "observability: serving http://%s/{metrics,metrics.json,ops,ops/stream}\n", srv.Addr())
	}
	// Telemetry-driven admission is opt-in precisely because it changes
	// placement — and with it the pinned digests.
	if o.loadAware {
		budget := cp.EnableLoadAwareAdmission(controlplane.LoadAwareConfig{})
		fmt.Fprintf(out, "load-aware admission: on (false-alarm budget %v)\n", budget)
	}
	// Planned migration is opt-in for the same reason: a one-move plan
	// changes placement, and with it the pinned digests.
	if o.migrate {
		cp.EnablePlannedMigration()
		fmt.Fprintln(out, "planned migration: on")
	}
	// One placement audit per completed top-level operation, keyed off the
	// event stream — instead of scattering Verify calls through every
	// injection path (which used to audit the evacuate path twice). Child
	// moves (Parent != 0) are covered by their parent's completion audit.
	cp.Watch(func(ev controlplane.Event) {
		if ev.Parent != 0 || (ev.Kind != controlplane.OpCompleted && ev.Kind != controlplane.OpFailed) {
			return
		}
		s.opsAudited++
		s.verify(ev.Op.String())
	})
	if o.autodetect {
		// The detector turns missed proposal deadlines into FailOps and
		// chains the evacuation; the driver only watches for the evacuation
		// outcome (accounting + repair scheduling below).
		if err := cp.EnableStallDetector(0); err != nil {
			return err
		}
		cp.Watch(func(ev controlplane.Event) {
			op, ok := ev.Op.(controlplane.EvacuateOp)
			if !ok || (ev.Kind != controlplane.OpCompleted && ev.Kind != controlplane.OpFailed) {
				return
			}
			oc, _ := cp.Outcome(ev.Seq)
			s.evacuationFinished(op.Machine, oc)
		})
	}
	// The clients' and beacons' counterparties.
	if err := c.Net().Attach(&netsim.FuncNode{Addr: "churn-client", Fn: func(p *netsim.Packet) {
		if p.Kind == "guest:data" {
			s.echoesReceived++
		}
	}}); err != nil {
		return err
	}
	if err := c.Net().Attach(&netsim.FuncNode{Addr: "churn-sink", Fn: func(p *netsim.Packet) {}}); err != nil {
		return err
	}

	c.Start()
	s.scheduleArrival()
	s.scheduleFailures()
	s.scheduleDrains()
	s.scheduleCrashes()
	s.schedulePings()
	if err := c.Run(s.end); err != nil {
		return err
	}
	if reg != nil {
		// Final snapshot: gauge funcs evaluate end-of-run pool and host
		// state on the (now idle) sim thread.
		if srv != nil {
			srv.Publish(reg)
		}
		if o.metricsOut != "" {
			if err := os.WriteFile(o.metricsOut, []byte(reg.JSON()), 0o644); err != nil {
				return fmt.Errorf("write metrics snapshot: %w", err)
			}
		}
	}
	return s.report()
}

func (s *scenario) verify(when string) {
	if err := s.cp.Verify(); err != nil {
		s.placementViolations++
		fmt.Fprintf(s.out, "PLACEMENT VIOLATION (%s at %v): %v\n", when, s.c.Loop().Now(), err)
	}
}

func (s *scenario) addResident(id string) {
	s.resident = append(s.resident, id)
	sort.Strings(s.resident)
}

func (s *scenario) dropResident(id string) {
	for i, have := range s.resident {
		if have == id {
			s.resident = append(s.resident[:i], s.resident[i+1:]...)
			return
		}
	}
}

func (s *scenario) scheduleArrival() {
	d := s.rng.ExpDur(sim.FromSeconds(1 / s.o.arrivalRate))
	at := s.c.Loop().Now() + d
	if at >= s.trafficEnd {
		return
	}
	s.c.Loop().At(at, "churn:arrival", func() {
		s.arrive()
		s.scheduleArrival()
	})
}

func (s *scenario) arrive() {
	id := fmt.Sprintf("tenant-%03d", s.nextID)
	s.nextID++
	// Periods vary deterministically per tenant: 4..11 ms.
	period := vtime.Virtual((4 + s.nextID%8)) * vtime.Virtual(sim.Millisecond)
	deadline := vtime.Virtual(s.trafficEnd)
	factory := func() guest.App {
		return &tenantApp{period: period, deadline: deadline, sink: "churn-sink"}
	}
	// Success is handled in Done: without -migrate it fires synchronously
	// inside Apply (same draw order as ever), but a planner-unblocked
	// admission finishes only after its child migration completes.
	s.cp.Apply(controlplane.AdmitOp{GuestID: id, Factory: factory, Done: func(oc *controlplane.Outcome) {
		if oc.Err != nil {
			return // rejection is a logged, expected outcome
		}
		s.addResident(id)
		// Departure after an exponential lifetime, inside the traffic window.
		life := s.rng.ExpDur(sim.FromSeconds(s.o.meanLife))
		depart := s.c.Loop().Now() + life
		if depart < s.trafficEnd {
			s.c.Loop().At(depart, "churn:departure", func() { s.depart(id) })
		}
	}})
}

func (s *scenario) depart(id string) {
	g, ok := s.c.Guest(id)
	if !ok {
		return
	}
	// A replacement mid-barrier blocks eviction AND would poison the exit
	// audit (the dead replica's frozen output count drags the common
	// prefix): come back when the lifecycle is quiet.
	if _, busy := s.cp.InFlight(id); busy {
		s.c.Loop().After(500*sim.Millisecond, "churn:departure", func() { s.depart(id) })
		return
	}
	// Exit audit: a degraded guest (abandoned replacement or evacuation)
	// is checked on its live replicas only.
	if _, err := auditLockstep(g, false); err != nil {
		s.prefixErrs = append(s.prefixErrs, err)
	}
	// Eviction releases the journal: fold its checkpoint telemetry first.
	js := g.JournalStats()
	if oc := s.cp.Apply(controlplane.EvictOp{GuestID: id}); oc.Err != nil {
		// Raced a lifecycle op that started this instant: retry shortly.
		s.c.Loop().After(500*sim.Millisecond, "churn:departure", func() { s.depart(id) })
		return
	}
	s.ckpts += js.Checkpoints
	s.truncRecs += js.TruncatedRecords
	s.truncBytes += js.TruncatedBytes
	s.dropResident(id)
}

func (s *scenario) scheduleFailures() {
	if s.o.failures <= 0 {
		return
	}
	// Spread failures across the middle of the traffic window so each
	// replacement has room to finish and the guest keeps serving after.
	lo, hi := s.trafficEnd/5, s.trafficEnd*7/10
	times := make([]sim.Time, s.o.failures)
	for i := range times {
		times[i] = lo + s.rng.UniformDur(0, hi-lo)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	for _, at := range times {
		s.c.Loop().At(at, "churn:failure", func() { s.fail() })
	}
}

func (s *scenario) fail() {
	// Victim: a random resident guest with no lifecycle op in flight.
	if len(s.resident) == 0 {
		s.c.Loop().After(sim.Second, "churn:failure", func() { s.fail() })
		return
	}
	id := s.resident[s.rng.Intn(len(s.resident))]
	g, ok := s.c.Guest(id)
	if !ok || g.Replaced > 0 {
		s.c.Loop().After(sim.Second, "churn:failure", func() { s.fail() })
		return
	}
	// Don't crash a guest whose lifecycle is mid-operation (a rejected
	// replacement request would leave the replica dead with no recovery),
	// or one already degraded by a frozen replica.
	_, busy := s.cp.InFlight(id)
	if busy || len(frozenSlots(g)) > 0 {
		s.c.Loop().After(sim.Second, "churn:failure", func() { s.fail() })
		return
	}
	victim := g.Replica(s.rng.Intn(g.NumReplicas()))
	deadHost := victim.Host()
	victim.Runtime().Stop() // the crash
	s.failuresInjected++
	s.cp.Apply(controlplane.ReplaceOp{GuestID: id, DeadHost: deadHost, Done: func(oc *controlplane.Outcome) {
		if oc.Err != nil {
			s.replacementAbandoned(id, oc.Err)
		}
	}})
}

// unjoin flattens an errors.Join result into its members (or the error
// itself when it is not a join).
func unjoin(err error) []error {
	if u, ok := err.(interface{ Unwrap() []error }); ok {
		return u.Unwrap()
	}
	return []error{err}
}

// replacementAbandoned records a replacement that could not complete: the
// guest degrades to its live pair (its frozen replica is excluded from
// audits via frozenSlots). An infeasible packing (ErrNoFeasibleHost,
// expected at high utilization) is counted and skipped; anything else is a
// real error.
func (s *scenario) replacementAbandoned(id string, err error) {
	if errors.Is(err, placement.ErrNoFeasibleHost) {
		s.infeasible++
		return
	}
	s.replacementErrs = append(s.replacementErrs, fmt.Errorf("%s: %w", id, err))
}

func (s *scenario) scheduleDrains() {
	if s.o.drains <= 0 {
		return
	}
	// Like failures, spread maintenance over the middle of the traffic
	// window so every evacuation and re-admission completes inside the run.
	lo, hi := s.trafficEnd/4, s.trafficEnd*3/5
	times := make([]sim.Time, s.o.drains)
	for i := range times {
		times[i] = lo + s.rng.UniformDur(0, hi-lo)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	for _, at := range times {
		s.c.Loop().At(at, "churn:drain", func() { s.drain() })
	}
}

// drain takes a random live machine down for maintenance: capacity out of
// the pool, every resident evacuated through child ReplaceOps of one
// DrainOp, and the machine re-admitted after an exponential maintenance
// window.
func (s *scenario) drain() {
	var candidates []int
	for m := 0; m < s.o.hosts; m++ {
		if !s.cp.Pool().Drained(m) {
			candidates = append(candidates, m)
		}
	}
	// Keep a placement-viable cloud: draining below 5 machines would leave
	// replacements nowhere to go at all.
	if len(candidates) <= 5 {
		return
	}
	m := candidates[s.rng.Intn(len(candidates))]
	s.drainsStarted++
	s.cp.Apply(controlplane.DrainOp{Machine: m, Done: func(oc *controlplane.Outcome) {
		s.drainsDone++
		if oc.Err != nil {
			// The drain outcome joins the per-resident move errors: classify
			// each member, not the join — an infeasible packing (expected,
			// skipped; the guest serves degraded with its frozen replica
			// excluded by frozenSlots) must not mask a genuine failure
			// alongside it.
			for _, sub := range unjoin(oc.Err) {
				if errors.Is(sub, placement.ErrNoFeasibleHost) {
					s.infeasible++
				} else {
					s.drainErrs = append(s.drainErrs, fmt.Errorf("drain host %d: %w", m, sub))
				}
			}
		}
		// Evacuated guests must still be in lockstep right after the move.
		for _, id := range oc.Guests {
			g, ok := s.c.Guest(id)
			if !ok {
				continue
			}
			if _, aerr := auditLockstep(g, false); aerr != nil {
				s.prefixErrs = append(s.prefixErrs, aerr)
			}
		}
		if oc.Rejected() {
			return // capacity never left the pool; nothing to undrain
		}
		// Maintenance done: the machine's capacity returns to the pool.
		s.c.Loop().After(s.rng.ExpDur(2*sim.Second), "churn:undrain", func() {
			if oc := s.cp.Apply(controlplane.UndrainOp{Machine: m}); oc.Err != nil {
				s.drainErrs = append(s.drainErrs, fmt.Errorf("undrain host %d: %w", m, oc.Err))
			}
		})
	}})
}

func (s *scenario) scheduleCrashes() {
	if s.o.crashes <= 0 {
		return
	}
	// Crashes land in the middle of the traffic window, like failures and
	// drains, so every reconfiguration, evacuation and repair completes
	// inside the run.
	lo, hi := s.trafficEnd/4, s.trafficEnd*3/5
	times := make([]sim.Time, s.o.crashes)
	for i := range times {
		times[i] = lo + s.rng.UniformDur(0, hi-lo)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	for _, at := range times {
		s.c.Loop().At(at, "churn:crash", func() { s.crash() })
	}
}

// crash kills a random live machine outright (its VMM dies). In scripted
// mode the driver submits the FailOp and EvacuateOp itself; in -autodetect
// mode the kill is data-plane only and the control plane's stall detector
// drives the fail → reconfigure → evacuate pipeline. Either way the machine
// is repaired (rejoining the pool) after an exponential reboot window.
func (s *scenario) crash() {
	// Candidates: undrained, unfailed machines with residents, none of them
	// mid-lifecycle; prefer machines hosting >= 2 guests so the crash
	// exercises a real multi-tenant evacuation.
	var candidates, rich []int
	undrained := 0
	for m := 0; m < s.o.hosts; m++ {
		if s.cp.Pool().Drained(m) || s.cp.Failed(m) || s.c.Host(m).Failed() {
			continue
		}
		undrained++
		residents := s.cp.Pool().Residents(m)
		if len(residents) == 0 {
			continue
		}
		busy := false
		for _, id := range residents {
			if _, b := s.cp.InFlight(id); b {
				busy = true
				break
			}
		}
		if busy {
			continue
		}
		candidates = append(candidates, m)
		if len(residents) >= 2 {
			rich = append(rich, m)
		}
	}
	// Keep a placement-viable cloud, like drains do.
	if undrained <= 5 || len(candidates) == 0 {
		s.c.Loop().After(sim.Second, "churn:crash", func() { s.crash() })
		return
	}
	pick := candidates
	if len(rich) > 0 {
		pick = rich
	}
	m := pick[s.rng.Intn(len(pick))]
	s.crashesStarted++
	if s.o.autodetect {
		// Data-plane kill only: no FailOp is scripted anywhere. The stall
		// detector will notice the silent VMM through missed proposal
		// deadlines, auto-fail the machine and chain the evacuation; the
		// driver's watch subscription picks the outcome up in
		// evacuationFinished.
		if err := s.c.FailMachine(m); err != nil {
			s.crashesDone++
			s.crashErrs = append(s.crashErrs, fmt.Errorf("kill host %d: %w", m, err))
		}
		return
	}
	if oc := s.cp.Apply(controlplane.FailOp{Machine: m}); oc.Rejected() {
		s.crashesDone++
		s.crashErrs = append(s.crashErrs, fmt.Errorf("fail host %d: %w", m, oc.Err))
		return
	}
	oc := s.cp.Apply(controlplane.EvacuateOp{Machine: m, Done: func(oc *controlplane.Outcome) {
		s.evacuationFinished(m, oc)
	}})
	if oc.Rejected() {
		s.crashesDone++
		s.crashErrs = append(s.crashErrs, fmt.Errorf("evacuate failed host %d: %w", m, oc.Err))
	}
}

// evacuationFinished handles a crashed machine's completed evacuation —
// whether the driver submitted it (scripted mode) or the detector pipeline
// did (-autodetect): classify the joined move errors, audit the affected
// guests, and schedule the repair.
func (s *scenario) evacuationFinished(m int, oc *controlplane.Outcome) {
	s.crashesDone++
	if oc.Err != nil {
		// Classify each joined member like drains do: an infeasible packing
		// is expected and skipped (the guest serves degraded on its live
		// pair); anything else is a real error.
		for _, sub := range unjoin(oc.Err) {
			if errors.Is(sub, placement.ErrNoFeasibleHost) {
				s.infeasible++
			} else {
				s.crashErrs = append(s.crashErrs, fmt.Errorf("evacuate failed host %d: %w", m, sub))
			}
		}
	}
	// Every evacuated guest is back in lockstep right after its move.
	for _, id := range oc.Guests {
		g, ok := s.c.Guest(id)
		if !ok {
			continue
		}
		if _, aerr := auditLockstep(g, false); aerr != nil {
			s.prefixErrs = append(s.prefixErrs, aerr)
		}
	}
	// Reboot done: the machine rejoins the pool — unless a degraded guest
	// is still stuck on it (infeasible move under a saturated packing), in
	// which case it stays failed; a RepairOp would rightly refuse.
	s.c.Loop().After(s.rng.ExpDur(2*sim.Second), "churn:repair", func() {
		if len(s.cp.Pool().Residents(m)) > 0 {
			return
		}
		if oc := s.cp.Apply(controlplane.RepairOp{Machine: m}); oc.Err != nil {
			s.crashErrs = append(s.crashErrs, fmt.Errorf("repair host %d: %w", m, oc.Err))
		}
	})
}

func (s *scenario) schedulePings() {
	var tick func()
	tick = func() {
		if s.c.Loop().Now() >= s.trafficEnd {
			return
		}
		for _, id := range s.resident {
			s.c.Net().Send(&netsim.Packet{
				Src: "churn-client", Dst: core.ServiceAddr(id), Size: 200, Kind: "ping",
			})
		}
		s.c.Loop().After(s.rng.ExpDur(sim.FromSeconds(s.o.pingEvery)), "churn:ping", tick)
	}
	s.c.Loop().After(100*sim.Millisecond, "churn:ping", tick)
}

func (s *scenario) report() error {
	log := s.cp.Log()
	st := controlplane.FoldStats(log)
	lockstepOK, lockstepBad, degradedOK := 0, 0, 0
	divergences := 0
	var firstBad error
	for _, id := range s.resident {
		g, ok := s.c.Guest(id)
		if !ok {
			continue
		}
		// A degraded guest (abandoned replacement or evacuation) is audited
		// on its live replicas; the frozen ones necessarily trail.
		degraded, err := auditLockstep(g, true)
		switch {
		case err != nil:
			lockstepBad++
			if firstBad == nil {
				firstBad = err
			}
		case degraded:
			degradedOK++
		default:
			lockstepOK++
		}
		divergences += g.Divergences()
	}
	offered := st.Admitted + st.Rejected
	admissionRate := 0.0
	if offered > 0 {
		admissionRate = float64(st.Admitted) / float64(offered)
	}
	byKind := map[controlplane.OpKind]int{}
	detected := 0
	for _, oc := range log {
		byKind[oc.Op.Kind()]++
		if f, ok := oc.Op.(controlplane.FailOp); ok && f.Detected {
			detected++
		}
	}
	digest := fnv.New64a()
	_, _ = digest.Write([]byte(controlplane.FormatLog(log)))
	fmt.Fprintf(s.out, "churn scenario: %d hosts, capacity %d, %.0fs, seed %d, autodetect=%v\n",
		s.o.hosts, s.o.capacity, s.o.duration, s.o.seed, s.o.autodetect)
	fmt.Fprintf(s.out, "  offered %d tenants: admitted=%d rejected=%d (admission rate %.2f)\n",
		offered, st.Admitted, st.Rejected, admissionRate)
	fmt.Fprintf(s.out, "  evicted=%d resident-at-end=%d final-utilization=%.2f\n",
		st.Evicted, s.cp.Residents(), s.cp.Utilization())
	// Evacuation moves (drain and crash) also count in Stats.Replacements;
	// subtract them so this line reports failure recoveries only.
	fmt.Fprintf(s.out, "  failures injected=%d replaced=%d replacement-failures=%d infeasible-skipped=%d drain-retries=%d\n",
		s.failuresInjected, st.Replacements-st.Evacuations-st.CrashEvacuations, len(s.replacementErrs), s.infeasible, st.DrainRetries)
	fmt.Fprintf(s.out, "  maintenance: drains=%d/%d evacuated=%d evacuation-failures=%d drain-errors=%d\n",
		s.drainsDone, s.drainsStarted, st.Evacuations, st.EvacuationFailures, len(s.drainErrs))
	fmt.Fprintf(s.out, "  host crashes: crashes=%d/%d auto-detected=%d crash-evacuated=%d crash-evacuation-failures=%d crash-errors=%d\n",
		s.crashesDone, s.crashesStarted, detected, st.CrashEvacuations, st.CrashEvacuationFailures, len(s.crashErrs))
	fmt.Fprintf(s.out, "  ops: total=%d admits=%d evicts=%d replaces=%d drains=%d undrains=%d fails=%d evacuates=%d repairs=%d audited=%d\n",
		len(log), byKind[controlplane.KindAdmit], byKind[controlplane.KindEvict], byKind[controlplane.KindReplace],
		byKind[controlplane.KindDrain], byKind[controlplane.KindUndrain], byKind[controlplane.KindFail],
		byKind[controlplane.KindEvacuate], byKind[controlplane.KindRepair], s.opsAudited)
	if s.o.ckptInstr > 0 {
		// Fold in the guests still resident at the end; evicted ones were
		// folded at departure.
		ckpts, truncRecs, truncBytes := s.ckpts, s.truncRecs, s.truncBytes
		for _, id := range s.resident {
			if g, ok := s.c.Guest(id); ok {
				js := g.JournalStats()
				ckpts += js.Checkpoints
				truncRecs += js.TruncatedRecords
				truncBytes += js.TruncatedBytes
			}
		}
		fmt.Fprintf(s.out, "  checkpointing: interval=%d checkpoints=%d truncated-records=%d truncated-bytes=%d\n",
			s.o.ckptInstr, ckpts, truncRecs, truncBytes)
	}
	if s.o.migrate {
		fmt.Fprintf(s.out, "  migration: planned=%d completed=%d failed=%d\n",
			st.MigrationsPlanned, st.Migrations, st.MigrationFailures)
	}
	fmt.Fprintf(s.out, "  op-log: digest=%016x\n", digest.Sum64())
	fmt.Fprintf(s.out, "  placement: every top-level outcome audited, violations=%d\n", s.placementViolations)
	fmt.Fprintf(s.out, "  lockstep: ok=%d degraded-ok=%d diverged=%d prefix-errors=%d divergences=%d echoes=%d egress-stuck=%d\n",
		lockstepOK, degradedOK, lockstepBad, len(s.prefixErrs), divergences, s.echoesReceived, s.c.Egress().StuckBelowForward())
	for _, err := range s.replacementErrs {
		fmt.Fprintf(s.out, "  replacement error: %v\n", err)
	}
	for _, err := range s.drainErrs {
		fmt.Fprintf(s.out, "  drain error: %v\n", err)
	}
	for _, err := range s.crashErrs {
		fmt.Fprintf(s.out, "  crash error: %v\n", err)
	}
	if s.placementViolations > 0 {
		return fmt.Errorf("%d placement violations", s.placementViolations)
	}
	if lockstepBad > 0 {
		return fmt.Errorf("%d guests ended out of lockstep: %v", lockstepBad, firstBad)
	}
	if len(s.prefixErrs) > 0 {
		return fmt.Errorf("%d mid-run lockstep prefix failures: %v", len(s.prefixErrs), s.prefixErrs[0])
	}
	if len(s.drainErrs) > 0 {
		return fmt.Errorf("%d drain errors: %v", len(s.drainErrs), s.drainErrs[0])
	}
	if len(s.crashErrs) > 0 {
		return fmt.Errorf("%d crash errors: %v", len(s.crashErrs), s.crashErrs[0])
	}
	return nil
}
