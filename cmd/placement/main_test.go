package main

import "testing"

func TestRunTheorem2(t *testing.T) {
	if err := run([]string{"-n", "21", "-c", "5"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunGreedy(t *testing.T) {
	if err := run([]string{"-n", "20", "-c", "4", "-greedy", "-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunTable(t *testing.T) {
	if err := run([]string{"-table"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunDefaultCapacity(t *testing.T) {
	if err := run([]string{"-n", "9"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadN(t *testing.T) {
	if err := run([]string{"-n", "10"}); err == nil {
		t.Fatal("n=10 should fail for Theorem 2")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("unknown flag should fail")
	}
}
