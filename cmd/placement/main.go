// Command placement computes and verifies StopWatch replica placements
// (Sec. VIII): edge-disjoint triangle packings of K_n under per-machine
// capacity constraints.
//
// Usage:
//
//	placement -n 21 -c 5            # Theorem-2 construction
//	placement -n 20 -c 4 -greedy    # greedy packing (any n)
//	placement -table                # the utilization table
//	placement -n 21 -c 5 -list      # also print every triangle
package main

import (
	"flag"
	"fmt"
	"os"

	"stopwatch"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "placement:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("placement", flag.ContinueOnError)
	n := fs.Int("n", 21, "machines in the cloud")
	c := fs.Int("c", 0, "per-machine guest capacity (0 = (n-1)/2)")
	greedy := fs.Bool("greedy", false, "use the greedy packer (works for any n)")
	table := fs.Bool("table", false, "print the utilization table instead")
	list := fs.Bool("list", false, "print every placement triangle")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *table {
		r, err := stopwatch.RunPlacementTable(stopwatch.DefaultPlacementConfig())
		if err != nil {
			return err
		}
		fmt.Println(r.Render())
		return nil
	}

	cap := *c
	if cap == 0 {
		cap = (*n - 1) / 2
	}
	var (
		p   *stopwatch.Placement
		err error
	)
	if *greedy {
		p, err = stopwatch.GreedyPack(*n, cap)
	} else {
		p, err = stopwatch.PlaceTheorem2(*n, cap)
	}
	if err != nil {
		return err
	}
	if err := p.Verify(); err != nil {
		return fmt.Errorf("constructed placement failed verification: %w", err)
	}
	max, err := stopwatch.Theorem1Max(*n)
	if err != nil {
		return err
	}
	fmt.Printf("n=%d machines, capacity c=%d\n", *n, cap)
	fmt.Printf("guests placed:        %d (3 replicas each)\n", p.Guests())
	fmt.Printf("isolation baseline:   %d guests\n", *n)
	fmt.Printf("Theorem-1 max (no c): %d triangles\n", max)
	fmt.Printf("utilization gain:     %.2fx over isolation\n", float64(p.Guests())/float64(*n))
	if *list {
		fmt.Println("placements (machine triples):")
		for i, t := range p.Triangles {
			fmt.Printf("  guest %4d → {%d, %d, %d}\n", i, t[0], t[1], t[2])
		}
	}
	return nil
}
