// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-only fig1,fig4,...] [-fast] [-seed N]
//
// Each figure prints its paper-style series to stdout. With -fast the
// simulation-backed experiments run shorter scenarios (useful for smoke
// runs); without it, the full durations are used.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"stopwatch"
	"stopwatch/internal/profiling"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	only := fs.String("only", "", "comma-separated subset: fig1,fig1c,fig4,fig5,fig6,fig7,fig8,placement,calib,collab,leader")
	fast := fs.Bool("fast", false, "shorter simulation runs")
	seed := fs.Uint64("seed", 0, "override master seed (0 = per-experiment defaults)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memprofile := fs.String("memprofile", "", "write an end-of-run heap profile to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProfiles, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		return err
	}
	defer func() {
		if perr := stopProfiles(); perr != nil {
			fmt.Fprintln(os.Stderr, "profile:", perr)
		}
	}()

	want := map[string]bool{}
	if *only != "" {
		for _, s := range strings.Split(*only, ",") {
			want[strings.TrimSpace(s)] = true
		}
	}
	sel := func(name string) bool { return len(want) == 0 || want[name] }

	type step struct {
		name string
		fn   func() (interface{ Render() string }, error)
	}
	steps := []step{
		{"fig1", func() (interface{ Render() string }, error) {
			return stopwatch.RunFig1(stopwatch.DefaultFig1Config())
		}},
		{"fig1c", func() (interface{ Render() string }, error) {
			cfg := stopwatch.DefaultFig1Config()
			cfg.LambdaPrime = 10.0 / 11.0
			return stopwatch.RunFig1(cfg)
		}},
		{"fig4", func() (interface{ Render() string }, error) {
			cfg := stopwatch.DefaultFig4Config()
			if *seed != 0 {
				cfg.Seed = *seed
			}
			if *fast {
				cfg.Duration = stopwatch.Seconds(8)
			}
			return stopwatch.RunFig4(cfg)
		}},
		{"fig5", func() (interface{ Render() string }, error) {
			cfg := stopwatch.DefaultFig5Config()
			if *seed != 0 {
				cfg.Seed = *seed
			}
			if *fast {
				cfg.Runs = 2
				cfg.SizesKB = []int{1, 10, 100, 1000}
			}
			return stopwatch.RunFig5(cfg)
		}},
		{"fig6", func() (interface{ Render() string }, error) {
			cfg := stopwatch.DefaultFig6Config()
			if *seed != 0 {
				cfg.Seed = *seed
			}
			if *fast {
				cfg.LoadDuration = stopwatch.Seconds(2)
			}
			return stopwatch.RunFig6(cfg)
		}},
		{"fig7", func() (interface{ Render() string }, error) {
			cfg := stopwatch.DefaultFig7Config()
			if *seed != 0 {
				cfg.Seed = *seed
			}
			return stopwatch.RunFig7(cfg)
		}},
		{"fig8", func() (interface{ Render() string }, error) {
			cfg := stopwatch.DefaultFig8Config()
			if *fast {
				cfg.Trials = 100
			}
			return stopwatch.RunFig8(cfg)
		}},
		{"placement", func() (interface{ Render() string }, error) {
			return stopwatch.RunPlacementTable(stopwatch.DefaultPlacementConfig())
		}},
		{"calib", func() (interface{ Render() string }, error) {
			cfg := stopwatch.DefaultCalibConfig()
			if *seed != 0 {
				cfg.Seed = *seed
			}
			if *fast {
				cfg.Duration = stopwatch.Seconds(5)
				cfg.DeltaNsMS = []float64{2, 8, 16}
			}
			return stopwatch.RunCalib(cfg)
		}},
		{"collab", func() (interface{ Render() string }, error) {
			cfg := stopwatch.DefaultCollabConfig()
			if *seed != 0 {
				cfg.Seed = *seed
			}
			if *fast {
				cfg.Duration = stopwatch.Seconds(8)
			}
			return stopwatch.RunCollab(cfg)
		}},
		{"leader", func() (interface{ Render() string }, error) {
			cfg := stopwatch.DefaultLeaderConfig()
			if *seed != 0 {
				cfg.Seed = *seed
			}
			if *fast {
				cfg.Duration = stopwatch.Seconds(8)
			}
			return stopwatch.RunLeader(cfg)
		}},
	}

	ran := 0
	for _, s := range steps {
		if !sel(s.name) {
			continue
		}
		ran++
		fmt.Printf("==== %s ====\n", s.name)
		r, err := s.fn()
		if err != nil {
			return fmt.Errorf("%s: %w", s.name, err)
		}
		fmt.Println(r.Render())
	}
	if ran == 0 {
		return fmt.Errorf("no experiments matched -only=%q", *only)
	}
	return nil
}
