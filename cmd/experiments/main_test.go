package main

import "testing"

func TestRunFig1Only(t *testing.T) {
	if err := run([]string{"-only", "fig1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunPlacementOnly(t *testing.T) {
	if err := run([]string{"-only", "placement"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownSelection(t *testing.T) {
	if err := run([]string{"-only", "nonsense"}); err == nil {
		t.Fatal("unknown selection should fail")
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-frobnicate"}); err == nil {
		t.Fatal("unknown flag should fail")
	}
}
