// Command benchjson turns `go test -bench` output into JSON and gates CI on
// performance regressions. It is the tooling behind the repo's BENCH_*.json
// perf trajectory (see README "Performance"):
//
//	go test -run XXX -bench 'BenchmarkChurn|BenchmarkClusterScale' -benchtime 20x -benchmem . |
//	    tee bench.txt
//	benchjson -in bench.txt -out bench-ci.json \
//	    -check BENCH_5.json -bench BenchmarkChurn -metric allocs/op -max-regress 0.20
//
// The -check baseline may be a raw benchjson output ({"benchmarks": ...})
// or a recorded BENCH_N.json trajectory file (the "after" section is used).
// A measured value worse than baseline*(1+max-regress) exits non-zero. For
// throughput metrics (events/sec, pkts/simsec) pass -higher-better: the
// gate then fails when the measured value drops below
// baseline*(1-max-regress):
//
//	benchjson -in bench.txt \
//	    -check BENCH_7.json -bench BenchmarkClusterScale/200 \
//	    -metric events/sec -higher-better -max-regress 0.20
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Bench is one benchmark's parsed result: iteration count plus every
// reported metric (ns/op, B/op, allocs/op, and custom b.ReportMetric units).
type Bench struct {
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is benchjson's output document.
type Report struct {
	Goos       string           `json:"goos,omitempty"`
	Goarch     string           `json:"goarch,omitempty"`
	CPU        string           `json:"cpu,omitempty"`
	Benchmarks map[string]Bench `json:"benchmarks"`
}

// baselineFile covers both accepted -check layouts.
type baselineFile struct {
	Benchmarks map[string]Bench `json:"benchmarks"`
	After      *Report          `json:"after"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	in := fs.String("in", "", "bench output file (default stdin)")
	out := fs.String("out", "", "write parsed JSON here (default stdout)")
	check := fs.String("check", "", "baseline JSON to compare against (raw benchjson output or BENCH_N.json)")
	benchName := fs.String("bench", "BenchmarkChurn", "benchmark to gate on with -check")
	metric := fs.String("metric", "allocs/op", "metric to gate on with -check")
	maxRegress := fs.Float64("max-regress", 0.20, "allowed fractional regression before failing")
	higherBetter := fs.Bool("higher-better", false, "gate metric is a throughput (regression = value dropping)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	rep, err := Parse(r)
	if err != nil {
		return err
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines found in input")
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			return err
		}
	} else {
		_, _ = stdout.Write(enc)
	}

	if *check == "" {
		return nil
	}
	base, err := loadBaseline(*check)
	if err != nil {
		return err
	}
	return Gate(rep, base, *benchName, *metric, *maxRegress, *higherBetter, stdout)
}

// Parse reads `go test -bench` output. Each benchmark line is
//
//	BenchmarkName[-P] <iterations> <value> <unit> [<value> <unit>]...
func Parse(r io.Reader) (*Report, error) {
	rep := &Report{Benchmarks: map[string]Bench{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		name := fields[0]
		// Strip the -GOMAXPROCS suffix so names are stable across machines.
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Bench{Iterations: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			b.Metrics[fields[i+1]] = v
		}
		rep.Benchmarks[name] = b
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

func loadBaseline(path string) (map[string]Bench, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var bf baselineFile
	if err := json.Unmarshal(raw, &bf); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if bf.After != nil && len(bf.After.Benchmarks) > 0 {
		return bf.After.Benchmarks, nil
	}
	if len(bf.Benchmarks) > 0 {
		return bf.Benchmarks, nil
	}
	return nil, fmt.Errorf("%s: no benchmarks (expected .benchmarks or .after.benchmarks)", path)
}

// Gate fails (returns an error) when the measured metric regressed more
// than maxRegress versus the baseline. With higherBetter false (allocs/op,
// B/op, ns/op) a regression is the value rising above
// baseline*(1+maxRegress); with higherBetter true (events/sec,
// pkts/simsec) it is the value dropping below baseline*(1-maxRegress).
func Gate(rep *Report, base map[string]Bench, bench, metric string, maxRegress float64, higherBetter bool, out io.Writer) error {
	cur, ok := rep.Benchmarks[bench]
	if !ok {
		return fmt.Errorf("gate: %s not in measured input", bench)
	}
	curV, ok := cur.Metrics[metric]
	if !ok {
		return fmt.Errorf("gate: %s has no %q metric (run with -benchmem?)", bench, metric)
	}
	b, ok := base[bench]
	if !ok {
		return fmt.Errorf("gate: %s not in baseline", bench)
	}
	baseV, ok := b.Metrics[metric]
	if !ok {
		return fmt.Errorf("gate: baseline %s has no %q metric", bench, metric)
	}
	if higherBetter {
		limit := baseV * (1 - maxRegress)
		if curV < limit {
			return fmt.Errorf("gate: %s %s regressed: %.2f < %.2f (baseline %.2f, -%d%% allowed)",
				bench, metric, curV, limit, baseV, int(maxRegress*100))
		}
		fmt.Fprintf(out, "gate: %s %s ok: %.2f >= %.2f (baseline %.2f)\n", bench, metric, curV, limit, baseV)
		return nil
	}
	limit := baseV * (1 + maxRegress)
	if curV > limit {
		return fmt.Errorf("gate: %s %s regressed: %.2f > %.2f (baseline %.2f, +%d%% allowed)",
			bench, metric, curV, limit, baseV, int(maxRegress*100))
	}
	fmt.Fprintf(out, "gate: %s %s ok: %.2f <= %.2f (baseline %.2f)\n", bench, metric, curV, limit, baseV)
	return nil
}
