package main

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: stopwatch
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkClusterScale/200         	      20	 430742306 ns/op	    873820 events/op	   2028637 events/sec	 26163101 B/op	  374610 allocs/op
BenchmarkChurn-8                  	      20	      7363 ns/op	        20.00 admitted	   20864 B/op	      91 allocs/op
PASS
ok  	stopwatch	9.216s
`

func TestParse(t *testing.T) {
	rep, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.CPU == "" {
		t.Fatalf("header not parsed: %+v", rep)
	}
	churn, ok := rep.Benchmarks["BenchmarkChurn"]
	if !ok {
		t.Fatalf("GOMAXPROCS suffix not stripped: %v", rep.Benchmarks)
	}
	if churn.Iterations != 20 || churn.Metrics["allocs/op"] != 91 || churn.Metrics["admitted"] != 20 {
		t.Fatalf("churn metrics wrong: %+v", churn)
	}
	scale := rep.Benchmarks["BenchmarkClusterScale/200"]
	if scale.Metrics["events/op"] != 873820 || scale.Metrics["ns/op"] != 430742306 {
		t.Fatalf("scale metrics wrong: %+v", scale)
	}
}

func TestGate(t *testing.T) {
	rep, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	base := map[string]Bench{
		"BenchmarkChurn": {Metrics: map[string]float64{"allocs/op": 80}},
	}
	var out strings.Builder
	// 91 > 80*1.10 → fail
	if err := Gate(rep, base, "BenchmarkChurn", "allocs/op", 0.10, false, &out); err == nil {
		t.Fatal("gate should fail at +10%")
	}
	// 91 <= 80*1.20 → pass
	if err := Gate(rep, base, "BenchmarkChurn", "allocs/op", 0.20, false, &out); err != nil {
		t.Fatalf("gate should pass at +20%%: %v", err)
	}
	if err := Gate(rep, base, "BenchmarkMissing", "allocs/op", 0.2, false, &out); err == nil {
		t.Fatal("missing benchmark must error")
	}
}

func TestGateHigherBetter(t *testing.T) {
	rep, err := Parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	// Measured events/sec is 2028637 (see sample above).
	base := map[string]Bench{
		"BenchmarkClusterScale/200": {Metrics: map[string]float64{"events/sec": 2400000}},
	}
	var out strings.Builder
	// 2028637 < 2400000*0.90 → throughput regression, fail
	if err := Gate(rep, base, "BenchmarkClusterScale/200", "events/sec", 0.10, true, &out); err == nil {
		t.Fatal("gate should fail at -10% throughput")
	}
	// 2028637 >= 2400000*0.80 → pass
	if err := Gate(rep, base, "BenchmarkClusterScale/200", "events/sec", 0.20, true, &out); err != nil {
		t.Fatalf("gate should pass at -20%%: %v", err)
	}
	// The same numbers under lower-is-better would pass trivially — make
	// sure the flag flips the comparison, not just the message.
	if err := Gate(rep, base, "BenchmarkClusterScale/200", "events/sec", 0.10, false, &out); err != nil {
		t.Fatalf("lower-is-better reading should pass: %v", err)
	}
}
