// Command stopwatch-sim runs one cloud scenario and prints what happened:
// a file download, an NFS load, a compute workload, an attacker/victim
// side-channel measurement — under the StopWatch VMM or the baseline — or a
// declarative fleet scenario file driven through the unified operations API
// (see scenarios/ and the README's "Scenarios" section).
//
// Usage:
//
//	stopwatch-sim -scenario download -mode stopwatch -size 100 -transport tcp
//	stopwatch-sim -scenario nfs -mode baseline -rate 100
//	stopwatch-sim -scenario parsec -app dedup -mode stopwatch
//	stopwatch-sim -scenario sidechannel -duration 20
//	stopwatch-sim run scenarios/lifecycle.yaml
//	stopwatch-sim run -seed 2 -shards 4 -listen 127.0.0.1:8080 scenarios/coresidency-probe.yaml
//	stopwatch-sim validate scenarios/
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"stopwatch"
	"stopwatch/internal/apps"
	"stopwatch/internal/core"
	"stopwatch/internal/guest"
	"stopwatch/internal/scenario"
	"stopwatch/internal/sim"
	"stopwatch/internal/stats"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "stopwatch-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) > 0 {
		switch args[0] {
		case "run":
			return runScenarioFiles(args[1:], os.Stdout)
		case "validate":
			return validateScenarioFiles(args[1:], os.Stdout)
		}
	}
	fs := flag.NewFlagSet("stopwatch-sim", flag.ContinueOnError)
	scenarioFlag := fs.String("scenario", "download", "download | nfs | parsec | sidechannel")
	mode := fs.String("mode", "stopwatch", "stopwatch | baseline")
	sizeKB := fs.Int("size", 100, "download size in KB")
	transportFlag := fs.String("transport", "tcp", "tcp | udp (download scenario)")
	rate := fs.Float64("rate", 100, "NFS ops/s")
	app := fs.String("app", "ferret", "parsec app: ferret|blackscholes|canneal|dedup|streamcluster")
	duration := fs.Float64("duration", 10, "scenario duration (seconds)")
	seed := fs.Uint64("seed", 1, "master seed")
	shards := fs.Int("shards", 1, "fabric shards (parallel simulation loops; download/nfs scenarios — results are identical for every value)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var m core.Mode
	switch *mode {
	case "stopwatch":
		m = core.ModeStopWatch
	case "baseline":
		m = core.ModeBaseline
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}

	if *shards < 1 {
		return fmt.Errorf("shards must be >= 1, got %d", *shards)
	}
	switch *scenarioFlag {
	case "download":
		return runDownload(*seed, m, *sizeKB, *transportFlag, *shards)
	case "nfs":
		return runNFS(*seed, m, *rate, sim.FromSeconds(*duration), *shards)
	case "parsec":
		return runParsec(*seed, m, *app)
	case "sidechannel":
		return runSideChannel(*seed, sim.FromSeconds(*duration))
	case "lifecycle":
		return fmt.Errorf("the lifecycle walkthrough is a scenario file now: stopwatch-sim run scenarios/lifecycle.yaml")
	default:
		return fmt.Errorf("unknown scenario %q", *scenarioFlag)
	}
}

// expandScenarioPaths resolves each argument to scenario files: a
// directory expands to its *.yaml/*.yml/*.json entries, sorted.
func expandScenarioPaths(args []string) ([]string, error) {
	var files []string
	for _, arg := range args {
		st, err := os.Stat(arg)
		if err != nil {
			return nil, err
		}
		if !st.IsDir() {
			files = append(files, arg)
			continue
		}
		entries, err := os.ReadDir(arg)
		if err != nil {
			return nil, err
		}
		for _, e := range entries {
			switch filepath.Ext(e.Name()) {
			case ".yaml", ".yml", ".json":
				files = append(files, filepath.Join(arg, e.Name()))
			}
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("no scenario files given (usage: stopwatch-sim run|validate <file|dir>...)")
	}
	return files, nil
}

// runScenarioFiles executes scenario files under every declared seed (or
// one -seed override), printing a per-run verdict and failing if any run
// does.
func runScenarioFiles(args []string, out *os.File) error {
	fs := flag.NewFlagSet("stopwatch-sim run", flag.ContinueOnError)
	seed := fs.Uint64("seed", 0, "override the scenario's seeds (0 = run every declared seed)")
	shards := fs.Int("shards", 0, "override the fleet's shard count (0 = the file's; digests are identical for every value)")
	listen := fs.String("listen", "", "serve /metrics, /metrics.json, /ops and /ops/stream on this loopback address during the run")
	quiet := fs.Bool("q", false, "suppress the op-stream narration")
	ciOnly := fs.Bool("ci", false, "run only scenarios tagged ci: true")
	noReconcile := fs.Bool("no-reconcile", false, "disable the pre-view-commit survivor reconcile round (failure-injection experiments)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	files, err := expandScenarioPaths(fs.Args())
	if err != nil {
		return err
	}
	failed := 0
	for _, path := range files {
		sc, err := scenario.Load(path)
		if err != nil {
			return err
		}
		if *ciOnly && !sc.CI {
			continue
		}
		seeds := sc.Seeds
		if *seed != 0 {
			seeds = []uint64{*seed}
		}
		for _, s := range seeds {
			opt := scenario.Options{Seed: s, Shards: *shards, Listen: *listen, DisableReconcile: *noReconcile}
			if !*quiet {
				opt.Out = out
			}
			res, err := scenario.Run(sc, opt)
			if err != nil {
				return fmt.Errorf("%s: %w", path, err)
			}
			verdict := "PASS"
			if !res.Passed() {
				verdict = "FAIL"
				failed++
			}
			fmt.Fprintf(out, "%s  %s seed=%d shards=%d ops=%d digest=%s\n",
				verdict, res.Name, res.Seed, res.Shards, res.Ops, res.Digest)
			for _, f := range res.Failures {
				fmt.Fprintf(out, "  - %s\n", f)
			}
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d scenario run(s) failed", failed)
	}
	return nil
}

// validateScenarioFiles parses and statically checks scenario files
// without running them.
func validateScenarioFiles(args []string, out *os.File) error {
	files, err := expandScenarioPaths(args)
	if err != nil {
		return err
	}
	bad := 0
	for _, path := range files {
		sc, err := scenario.Load(path)
		if err == nil {
			err = sc.Validate()
		}
		if err != nil {
			bad++
			fmt.Fprintf(out, "INVALID %s\n%v\n", path, err)
			continue
		}
		fmt.Fprintf(out, "ok %s\n", path)
	}
	if bad > 0 {
		return fmt.Errorf("%d scenario file(s) invalid", bad)
	}
	return nil
}

func newCluster(seed uint64, mode core.Mode, shards int) (*core.Cluster, []int, error) {
	cfg := core.DefaultClusterConfig()
	cfg.Seed = seed
	cfg.Mode = mode
	cfg.Shards = shards
	idx := []int{0, 1, 2}
	if mode == core.ModeBaseline {
		cfg.Hosts = 1
		idx = []int{0}
	}
	c, err := core.New(cfg)
	return c, idx, err
}

func runDownload(seed uint64, mode core.Mode, sizeKB int, transportFlag string, shards int) error {
	var fsMode apps.FileServerMode
	switch transportFlag {
	case "tcp":
		fsMode = apps.ModeTCP
	case "udp":
		fsMode = apps.ModeUDP
	default:
		return fmt.Errorf("unknown transport %q", transportFlag)
	}
	c, idx, err := newCluster(seed, mode, shards)
	if err != nil {
		return err
	}
	fsCfg := apps.DefaultFileServerConfig()
	fsCfg.Mode = fsMode
	g, err := c.Deploy("web", idx, func() guest.App {
		srv, err := apps.NewFileServer(fsCfg)
		if err != nil {
			panic(err)
		}
		return srv
	})
	if err != nil {
		return err
	}
	cl, err := c.NewClient("laptop")
	if err != nil {
		return err
	}
	c.Start()
	dl := apps.NewDownloader(cl)
	var lat sim.Time
	c.Loop().At(20*sim.Millisecond, "fetch", func() {
		_ = dl.Fetch(core.ServiceAddr("web"), fsMode, sizeKB<<10, func(l sim.Time) {
			lat = l
			c.Stop()
		})
	})
	if err := c.Run(600 * sim.Second); err != nil {
		return err
	}
	if lat == 0 {
		return fmt.Errorf("download did not complete")
	}
	fmt.Printf("scenario:   %s download, %d KB over %s\n", mode, sizeKB, transportFlag)
	fmt.Printf("latency:    %.2f ms\n", lat.Milliseconds())
	fmt.Printf("client pkts: sent=%d received=%d\n", cl.PacketsSent(), cl.PacketsReceived())
	if mode == core.ModeStopWatch {
		fmt.Printf("lockstep:   %v\n", errString(g.CheckLockstep()))
		fmt.Printf("divergences: %d\n", g.Divergences())
		fmt.Printf("egress forwarded: %d packets\n", c.Egress().Forwarded())
	}
	return nil
}

func runNFS(seed uint64, mode core.Mode, rate float64, dur sim.Time, shards int) error {
	c, idx, err := newCluster(seed, mode, shards)
	if err != nil {
		return err
	}
	g, err := c.Deploy("nfs", idx, func() guest.App {
		s, err := apps.NewNFSServer(16)
		if err != nil {
			panic(err)
		}
		return s
	})
	if err != nil {
		return err
	}
	cl, err := c.NewClient("nfs-client")
	if err != nil {
		return err
	}
	c.Start()
	gen, err := apps.NewNFSLoadGen(c.Loop(), c.Source().Stream("gen"), cl, core.ServiceAddr("nfs"),
		apps.PaperMix(), apps.NFSLoadGenConfig{Processes: 5, RatePerSec: rate})
	if err != nil {
		return err
	}
	gen.Start(dur)
	if err := c.Run(dur + 3*sim.Second); err != nil {
		return err
	}
	lats := gen.Latencies()
	if len(lats) == 0 {
		return fmt.Errorf("no NFS ops completed")
	}
	var ms []float64
	for _, l := range lats {
		ms = append(ms, l.Milliseconds())
	}
	sum, err := stats.Summarize(ms)
	if err != nil {
		return err
	}
	fmt.Printf("scenario: %s NFS at %.0f ops/s for %s\n", mode, rate, dur)
	fmt.Printf("ops:      issued=%d completed=%d\n", gen.Issued(), gen.Completed())
	fmt.Printf("latency:  mean=%.2fms p50=%.2fms p95=%.2fms p99=%.2fms\n", sum.Mean, sum.P50, sum.P95, sum.P99)
	fmt.Printf("packets/op: c→s=%.2f s→c=%.2f\n",
		float64(cl.PacketsSent())/float64(gen.Completed()),
		float64(cl.PacketsReceived())/float64(gen.Completed()))
	if mode == core.ModeStopWatch {
		fmt.Printf("lockstep: %v\n", errString(g.CheckLockstep()))
	}
	return nil
}

func runParsec(seed uint64, mode core.Mode, name string) error {
	var prof apps.ParsecProfile
	found := false
	for _, p := range apps.PaperParsecProfiles() {
		if p.Name == name {
			prof = p
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("unknown parsec app %q", name)
	}
	cfg := stopwatch.DefaultFig7Config()
	cfg.Seed = seed
	cfg.Profiles = []apps.ParsecProfile{prof}
	r, err := stopwatch.RunFig7(cfg)
	if err != nil {
		return err
	}
	p := r.Points[0]
	fmt.Printf("scenario: parsec %s\n", name)
	fmt.Printf("baseline:  %.0f ms (paper: %.0f ms)\n", p.Baseline, p.PaperBaseline)
	fmt.Printf("stopwatch: %.0f ms (paper: %.0f ms)\n", p.StopWatch, p.PaperStopWatch)
	fmt.Printf("ratio:     %.2fx; disk interrupts: %d\n", p.Ratio, p.DiskInterrupts)
	_ = mode // both modes are run by the harness
	return nil
}

func runSideChannel(seed uint64, dur sim.Time) error {
	cfg := stopwatch.DefaultFig4Config()
	cfg.Seed = seed
	cfg.Duration = dur
	r, err := stopwatch.RunFig4(cfg)
	if err != nil {
		return err
	}
	fmt.Println(r.Render())
	return nil
}

func errString(err error) string {
	if err == nil {
		return "ok (identical replica outputs)"
	}
	return err.Error()
}
