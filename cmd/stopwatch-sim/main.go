// Command stopwatch-sim runs one cloud scenario and prints what happened:
// a file download, an NFS load, a compute workload, an attacker/victim
// side-channel measurement — under the StopWatch VMM or the baseline — or a
// control-plane lifecycle walkthrough driven through the unified operations
// API (typed Ops, the Watch event stream, and a detector-driven machine
// failure).
//
// Usage:
//
//	stopwatch-sim -scenario download -mode stopwatch -size 100 -transport tcp
//	stopwatch-sim -scenario nfs -mode baseline -rate 100
//	stopwatch-sim -scenario parsec -app dedup -mode stopwatch
//	stopwatch-sim -scenario sidechannel -duration 20
//	stopwatch-sim -scenario lifecycle -duration 5
//	stopwatch-sim -scenario lifecycle -duration 5 -listen 127.0.0.1:8080
package main

import (
	"flag"
	"fmt"
	"os"

	"stopwatch"
	"stopwatch/internal/apps"
	"stopwatch/internal/controlplane"
	"stopwatch/internal/core"
	"stopwatch/internal/guest"
	"stopwatch/internal/metrics"
	"stopwatch/internal/netsim"
	"stopwatch/internal/obsrv"
	"stopwatch/internal/sim"
	"stopwatch/internal/stats"
	"stopwatch/internal/vtime"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "stopwatch-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("stopwatch-sim", flag.ContinueOnError)
	scenario := fs.String("scenario", "download", "download | nfs | parsec | sidechannel | lifecycle")
	mode := fs.String("mode", "stopwatch", "stopwatch | baseline")
	sizeKB := fs.Int("size", 100, "download size in KB")
	transportFlag := fs.String("transport", "tcp", "tcp | udp (download scenario)")
	rate := fs.Float64("rate", 100, "NFS ops/s")
	app := fs.String("app", "ferret", "parsec app: ferret|blackscholes|canneal|dedup|streamcluster")
	duration := fs.Float64("duration", 10, "scenario duration (seconds)")
	seed := fs.Uint64("seed", 1, "master seed")
	shards := fs.Int("shards", 1, "fabric shards (parallel simulation loops; download/nfs/lifecycle scenarios — results are identical for every value)")
	listen := fs.String("listen", "", "lifecycle scenario: serve /metrics, /metrics.json, /ops and /ops/stream on this loopback address (empty = off)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var m core.Mode
	switch *mode {
	case "stopwatch":
		m = core.ModeStopWatch
	case "baseline":
		m = core.ModeBaseline
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}

	if *shards < 1 {
		return fmt.Errorf("shards must be >= 1, got %d", *shards)
	}
	switch *scenario {
	case "download":
		return runDownload(*seed, m, *sizeKB, *transportFlag, *shards)
	case "nfs":
		return runNFS(*seed, m, *rate, sim.FromSeconds(*duration), *shards)
	case "parsec":
		return runParsec(*seed, m, *app)
	case "sidechannel":
		return runSideChannel(*seed, sim.FromSeconds(*duration))
	case "lifecycle":
		return runLifecycle(*seed, sim.FromSeconds(*duration), *listen, *shards)
	default:
		return fmt.Errorf("unknown scenario %q", *scenario)
	}
}

// runLifecycle walks the unified operations API on a small live cloud:
// tenants admitted through AdmitOp, one evicted, one replica migrated onto
// a fresh machine through a MigrateOp's freeze+replace barrier, one machine
// killed at the data plane and recovered by the stall detector's fail →
// reconfigure → evacuate pipeline — with checkpointed journals bounding
// every replacement's replay. Every operation streams its phases over Watch
// and lands in the append-only op log.
func runLifecycle(seed uint64, dur sim.Time, listen string, shards int) error {
	if dur < 3*sim.Second {
		dur = 3 * sim.Second
	}
	cfg := core.DefaultClusterConfig()
	cfg.Seed = seed
	cfg.Hosts = 9
	cfg.Shards = shards
	// Long-lived guests: checkpoint each journal every 2M instructions so
	// the migration and the evacuations below replay a bounded suffix.
	cfg.VMM.CheckpointInstr = 2_000_000
	c, err := core.New(cfg)
	if err != nil {
		return err
	}
	cp, err := controlplane.New(c, controlplane.DefaultConfig(3))
	if err != nil {
		return err
	}
	// Infeasible admissions/re-homes may be solved with a one-move plan.
	cp.EnablePlannedMigration()
	// Observability plane: with -listen, both planes feed one registry and
	// the lifecycle is queryable live over localhost HTTP while it runs.
	var reg *metrics.Registry
	var srv *obsrv.Server
	if listen != "" {
		reg = metrics.NewRegistry()
		cp.InstrumentMetrics(reg)
		c.InstrumentMetrics(reg)
		srv = obsrv.New()
		srv.Attach(cp, reg)
		if err := srv.Start(listen); err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("observability: serving http://%s/{metrics,metrics.json,ops,ops/stream}\n", srv.Addr())
	}
	// Stream every top-level operation's lifecycle as it happens.
	cp.Watch(func(ev controlplane.Event) {
		switch ev.Kind {
		case controlplane.OpStarted:
			if ev.Parent == 0 {
				fmt.Printf("t=%7.3fs  op #%d started: %s\n", float64(ev.At)/1e9, ev.Seq, ev.Op)
			}
		case controlplane.PhaseReached:
			fmt.Printf("t=%7.3fs    op #%d %s: %s\n", float64(ev.At)/1e9, ev.Seq, ev.Op, ev.Phase)
		case controlplane.OpCompleted:
			fmt.Printf("t=%7.3fs  op #%d completed: %s\n", float64(ev.At)/1e9, ev.Seq, ev.Op)
		case controlplane.OpFailed:
			fmt.Printf("t=%7.3fs  op #%d FAILED: %s: %v\n", float64(ev.At)/1e9, ev.Seq, ev.Op, ev.Err)
		}
	})
	// The detector turns a silent VMM into a FailOp and chains the
	// evacuation — no scripted FailHost below.
	if err := cp.EnableStallDetector(0); err != nil {
		return err
	}
	if err := c.Net().Attach(&netsim.FuncNode{Addr: "sink", Fn: func(*netsim.Packet) {}}); err != nil {
		return err
	}
	if err := c.Net().Attach(&netsim.FuncNode{Addr: "probe", Fn: func(*netsim.Packet) {}}); err != nil {
		return err
	}
	ids := []string{"ga", "gb", "gc", "gd"}
	for _, id := range ids {
		oc := cp.Apply(controlplane.AdmitOp{GuestID: id, Factory: func() guest.App {
			// A sustainable burst profile: the default beacon's 64KB read
			// every 4ms would saturate a shared disk (and with it the Dom0
			// I/O path) once two replicas co-reside — a regime where no
			// proposal deadline separates slow from dead.
			b := apps.NewBeaconApp(vtime.Virtual(5 * sim.Millisecond))
			b.Compute = 500_000
			b.DiskBytes = 0
			b.Sink = "sink"
			return b
		}})
		if oc.Err != nil {
			return oc.Err
		}
	}
	c.Start()
	// Inbound pings keep the proposal path busy so a dead VMM's silence is
	// observable (stall detection needs pending delivery proposals).
	var tick func()
	tick = func() {
		if c.Loop().Now() >= dur-sim.Second {
			return
		}
		for _, id := range ids {
			if _, ok := c.Guest(id); ok {
				c.Net().Send(&netsim.Packet{Src: "probe", Dst: core.ServiceAddr(id), Size: 128, Kind: "ping"})
			}
		}
		c.Loop().After(20*sim.Millisecond, "ping", tick)
	}
	c.Loop().At(50*sim.Millisecond, "ping", tick)
	// One tenant departs; later one machine's VMM dies.
	c.Loop().At(400*sim.Millisecond, "evict", func() {
		cp.Apply(controlplane.EvictOp{GuestID: "gb"})
	})
	// Planned migration: move one of ga's replicas onto a fresh machine
	// through the freeze + quiesce + replace barrier, live.
	c.Loop().At(700*sim.Millisecond, "migrate", func() {
		tri, ok := cp.Pool().Triangle("ga")
		if !ok {
			return
		}
		// Recompute edge usage and load from the resident triangles to pick
		// a destination the barrier's pinned re-home will accept.
		used := map[[2]int]bool{}
		load := make([]int, cfg.Hosts)
		edge := func(a, b int) [2]int {
			if a > b {
				a, b = b, a
			}
			return [2]int{a, b}
		}
		for _, id := range cp.Pool().IDs() {
			t, _ := cp.Pool().Triangle(id)
			for a := 0; a < 3; a++ {
				load[t[a]]++
				for b := a + 1; b < 3; b++ {
					used[edge(t[a], t[b])] = true
				}
			}
		}
		to := -1
		for h := 0; h < cfg.Hosts; h++ {
			if h == tri[0] || h == tri[1] || h == tri[2] || load[h] >= cp.Pool().Capacity() {
				continue
			}
			if !used[edge(h, tri[1])] && !used[edge(h, tri[2])] {
				to = h
				break
			}
		}
		if to < 0 {
			return
		}
		fmt.Printf("t=%7.3fs  MIGRATE ga %d->%d (planned move through the freeze+replace barrier)\n",
			float64(c.Loop().Now())/1e9, tri[0], to)
		cp.Apply(controlplane.MigrateOp{GuestID: "ga", From: tri[0], To: to})
	})
	victim := 0
	c.Loop().At(sim.Second, "kill", func() {
		// The machine hosting the most guests dies at the data plane only.
		for m := 1; m < cfg.Hosts; m++ {
			if len(cp.Pool().Residents(m)) > len(cp.Pool().Residents(victim)) {
				victim = m
			}
		}
		fmt.Printf("t=%7.3fs  KILL machine %d (data plane only — detector takes it from here)\n",
			float64(c.Loop().Now())/1e9, victim)
		if err := c.FailMachine(victim); err != nil {
			fmt.Println("kill:", err)
		}
	})
	if err := c.Run(dur); err != nil {
		return err
	}
	if srv != nil {
		srv.Publish(reg) // final snapshot with end-of-run gauges
	}
	log := cp.Log()
	st := controlplane.FoldStats(log)
	fmt.Printf("op log: %d ops — admitted=%d evicted=%d migrations=%d failures=%d crash-evacuated=%d replacements=%d\n",
		len(log), st.Admitted, st.Evicted, st.Migrations, st.HostFailures, st.CrashEvacuations, st.Replacements)
	ckpts, truncated := 0, 0
	for _, id := range ids {
		if g, ok := c.Guest(id); ok {
			js := g.JournalStats()
			ckpts += js.Checkpoints
			truncated += js.TruncatedRecords
		}
	}
	fmt.Printf("checkpoints: %d taken, %d journal records truncated\n", ckpts, truncated)
	if err := cp.Verify(); err != nil {
		return err
	}
	for _, id := range ids {
		g, ok := c.Guest(id)
		if !ok {
			continue
		}
		if err := g.CheckLockstepPrefix(); err != nil {
			return err
		}
	}
	if st.HostFailures == 0 {
		return fmt.Errorf("the detector never failed machine %d", victim)
	}
	if st.Migrations == 0 {
		return fmt.Errorf("the scripted migration never completed")
	}
	if ckpts == 0 {
		return fmt.Errorf("no journal checkpoints were taken")
	}
	fmt.Println("lockstep: ok (every surviving guest agrees)")
	return nil
}

func newCluster(seed uint64, mode core.Mode, shards int) (*core.Cluster, []int, error) {
	cfg := core.DefaultClusterConfig()
	cfg.Seed = seed
	cfg.Mode = mode
	cfg.Shards = shards
	idx := []int{0, 1, 2}
	if mode == core.ModeBaseline {
		cfg.Hosts = 1
		idx = []int{0}
	}
	c, err := core.New(cfg)
	return c, idx, err
}

func runDownload(seed uint64, mode core.Mode, sizeKB int, transportFlag string, shards int) error {
	var fsMode apps.FileServerMode
	switch transportFlag {
	case "tcp":
		fsMode = apps.ModeTCP
	case "udp":
		fsMode = apps.ModeUDP
	default:
		return fmt.Errorf("unknown transport %q", transportFlag)
	}
	c, idx, err := newCluster(seed, mode, shards)
	if err != nil {
		return err
	}
	fsCfg := apps.DefaultFileServerConfig()
	fsCfg.Mode = fsMode
	g, err := c.Deploy("web", idx, func() guest.App {
		srv, err := apps.NewFileServer(fsCfg)
		if err != nil {
			panic(err)
		}
		return srv
	})
	if err != nil {
		return err
	}
	cl, err := c.NewClient("laptop")
	if err != nil {
		return err
	}
	c.Start()
	dl := apps.NewDownloader(cl)
	var lat sim.Time
	c.Loop().At(20*sim.Millisecond, "fetch", func() {
		_ = dl.Fetch(core.ServiceAddr("web"), fsMode, sizeKB<<10, func(l sim.Time) {
			lat = l
			c.Stop()
		})
	})
	if err := c.Run(600 * sim.Second); err != nil {
		return err
	}
	if lat == 0 {
		return fmt.Errorf("download did not complete")
	}
	fmt.Printf("scenario:   %s download, %d KB over %s\n", mode, sizeKB, transportFlag)
	fmt.Printf("latency:    %.2f ms\n", lat.Milliseconds())
	fmt.Printf("client pkts: sent=%d received=%d\n", cl.PacketsSent(), cl.PacketsReceived())
	if mode == core.ModeStopWatch {
		fmt.Printf("lockstep:   %v\n", errString(g.CheckLockstep()))
		fmt.Printf("divergences: %d\n", g.Divergences())
		fmt.Printf("egress forwarded: %d packets\n", c.Egress().Forwarded())
	}
	return nil
}

func runNFS(seed uint64, mode core.Mode, rate float64, dur sim.Time, shards int) error {
	c, idx, err := newCluster(seed, mode, shards)
	if err != nil {
		return err
	}
	g, err := c.Deploy("nfs", idx, func() guest.App {
		s, err := apps.NewNFSServer(16)
		if err != nil {
			panic(err)
		}
		return s
	})
	if err != nil {
		return err
	}
	cl, err := c.NewClient("nfs-client")
	if err != nil {
		return err
	}
	c.Start()
	gen, err := apps.NewNFSLoadGen(c.Loop(), c.Source().Stream("gen"), cl, core.ServiceAddr("nfs"),
		apps.PaperMix(), apps.NFSLoadGenConfig{Processes: 5, RatePerSec: rate})
	if err != nil {
		return err
	}
	gen.Start(dur)
	if err := c.Run(dur + 3*sim.Second); err != nil {
		return err
	}
	lats := gen.Latencies()
	if len(lats) == 0 {
		return fmt.Errorf("no NFS ops completed")
	}
	var ms []float64
	for _, l := range lats {
		ms = append(ms, l.Milliseconds())
	}
	sum, err := stats.Summarize(ms)
	if err != nil {
		return err
	}
	fmt.Printf("scenario: %s NFS at %.0f ops/s for %s\n", mode, rate, dur)
	fmt.Printf("ops:      issued=%d completed=%d\n", gen.Issued(), gen.Completed())
	fmt.Printf("latency:  mean=%.2fms p50=%.2fms p95=%.2fms p99=%.2fms\n", sum.Mean, sum.P50, sum.P95, sum.P99)
	fmt.Printf("packets/op: c→s=%.2f s→c=%.2f\n",
		float64(cl.PacketsSent())/float64(gen.Completed()),
		float64(cl.PacketsReceived())/float64(gen.Completed()))
	if mode == core.ModeStopWatch {
		fmt.Printf("lockstep: %v\n", errString(g.CheckLockstep()))
	}
	return nil
}

func runParsec(seed uint64, mode core.Mode, name string) error {
	var prof apps.ParsecProfile
	found := false
	for _, p := range apps.PaperParsecProfiles() {
		if p.Name == name {
			prof = p
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("unknown parsec app %q", name)
	}
	cfg := stopwatch.DefaultFig7Config()
	cfg.Seed = seed
	cfg.Profiles = []apps.ParsecProfile{prof}
	r, err := stopwatch.RunFig7(cfg)
	if err != nil {
		return err
	}
	p := r.Points[0]
	fmt.Printf("scenario: parsec %s\n", name)
	fmt.Printf("baseline:  %.0f ms (paper: %.0f ms)\n", p.Baseline, p.PaperBaseline)
	fmt.Printf("stopwatch: %.0f ms (paper: %.0f ms)\n", p.StopWatch, p.PaperStopWatch)
	fmt.Printf("ratio:     %.2fx; disk interrupts: %d\n", p.Ratio, p.DiskInterrupts)
	_ = mode // both modes are run by the harness
	return nil
}

func runSideChannel(seed uint64, dur sim.Time) error {
	cfg := stopwatch.DefaultFig4Config()
	cfg.Seed = seed
	cfg.Duration = dur
	r, err := stopwatch.RunFig4(cfg)
	if err != nil {
		return err
	}
	fmt.Println(r.Render())
	return nil
}

func errString(err error) string {
	if err == nil {
		return "ok (identical replica outputs)"
	}
	return err.Error()
}
