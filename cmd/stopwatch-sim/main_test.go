package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"stopwatch/internal/scenario"
)

func TestRunDownloadBaseline(t *testing.T) {
	if err := run([]string{"-scenario", "download", "-mode", "baseline", "-size", "10"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunDownloadStopWatchUDP(t *testing.T) {
	if err := run([]string{"-scenario", "download", "-mode", "stopwatch", "-size", "10", "-transport", "udp"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunNFS(t *testing.T) {
	if err := run([]string{"-scenario", "nfs", "-mode", "baseline", "-rate", "50", "-duration", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsUnknowns(t *testing.T) {
	for _, args := range [][]string{
		{"-scenario", "bogus"},
		{"-mode", "bogus"},
		{"-scenario", "download", "-transport", "bogus"},
		{"-scenario", "parsec", "-app", "bogus"},
		{"-nonflag"},
		{"-scenario", "lifecycle"}, // retired: points at scenarios/lifecycle.yaml
		{"run"},                    // no files
		{"validate"},               // no files
		{"run", "no-such-file.yaml"},
	} {
		if err := run(args); err == nil {
			t.Fatalf("args %v should fail", args)
		}
	}
}

const corpusDir = "../../scenarios"

// corpusFiles lists the shipped scenario corpus.
func corpusFiles(t *testing.T) []string {
	t.Helper()
	entries, err := os.ReadDir(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	var files []string
	for _, e := range entries {
		if filepath.Ext(e.Name()) == ".yaml" {
			files = append(files, filepath.Join(corpusDir, e.Name()))
		}
	}
	if len(files) < 5 {
		t.Fatalf("corpus has only %d scenario files", len(files))
	}
	return files
}

// TestValidateAllCorpus: every shipped scenario parses and passes every
// static check, via the same subcommand CI uses.
func TestValidateAllCorpus(t *testing.T) {
	if err := run([]string{"validate", corpusDir}); err != nil {
		t.Fatal(err)
	}
}

// TestRunLifecycle: the converted lifecycle walkthrough — the detector-
// driven machine failure, the scripted migration, the checkpointed
// journals — runs end-to-end with every assertion green, through the run
// subcommand.
func TestRunLifecycle(t *testing.T) {
	if err := run([]string{"run", "-q", filepath.Join(corpusDir, "lifecycle.yaml")}); err != nil {
		t.Fatal(err)
	}
}

// TestRunLifecycleWithListen: the observability server rides along without
// disturbing the scenario (same digest pins, same assertions), and a
// non-loopback address is refused up front.
func TestRunLifecycleWithListen(t *testing.T) {
	if err := run([]string{"run", "-q", "-listen", "127.0.0.1:0", filepath.Join(corpusDir, "lifecycle.yaml")}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"run", "-q", "-listen", "0.0.0.0:0", filepath.Join(corpusDir, "lifecycle.yaml")}); err == nil {
		t.Fatal("non-loopback listen address accepted")
	}
}

// TestLossyViewChangeNeedsReconcile: the lossy-view-change repro is green
// only because of the pre-view-commit survivor reconcile round. With the
// round force-disabled (the -no-reconcile experiment) the split proposal
// deliveries wedge one survivor through the view change, the evacuation
// never quiesces and the scenario fails on exactly the designed
// signature: strict-lockstep divergence and zeroed reconcile counters.
func TestLossyViewChangeNeedsReconcile(t *testing.T) {
	sc, err := scenario.Load(filepath.Join(corpusDir, "lossy-view-change.yaml"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := scenario.Run(sc, scenario.Options{Seed: 1, DisableReconcile: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Passed() {
		t.Fatal("scenario passed with the reconcile round disabled")
	}
	for _, want := range []string{
		"lockstep assertion srv",
		"stats assertion crash_evacuations: 0 below min 1",
		"stats assertion reconcile_repairs: 0 below min 1",
	} {
		found := false
		for _, f := range res.Failures {
			if strings.Contains(f, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("failures = %v, want one containing %q", res.Failures, want)
		}
	}
}

// TestScenarioDigestsStable: every CI-tagged scenario, under every
// declared seed, produces its pinned op-log digest — and the same digest
// for 1, 2 and 4 fabric shards. A change in any pin is a change in
// control-plane behavior and must be made deliberately (re-pin with
// `stopwatch-sim run scenarios/`).
func TestScenarioDigestsStable(t *testing.T) {
	for _, path := range corpusFiles(t) {
		sc, err := scenario.Load(path)
		if err != nil {
			t.Fatal(err)
		}
		if !sc.CI {
			continue
		}
		for _, seed := range sc.Seeds {
			pin := sc.Digests[seed]
			if pin == "" {
				t.Errorf("%s: seed %d has no digest pin", path, seed)
				continue
			}
			for _, shards := range []int{1, 2, 4} {
				res, err := scenario.Run(sc, scenario.Options{Seed: seed, Shards: shards})
				if err != nil {
					t.Fatalf("%s seed=%d shards=%d: %v", path, seed, shards, err)
				}
				for _, f := range res.Failures {
					t.Errorf("%s seed=%d shards=%d: %s", path, seed, shards, f)
				}
				if res.Digest != pin {
					t.Errorf("%s seed=%d shards=%d: digest %s, pinned %s", path, seed, shards, res.Digest, pin)
				}
			}
		}
	}
}
