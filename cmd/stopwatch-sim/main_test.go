package main

import "testing"

func TestRunDownloadBaseline(t *testing.T) {
	if err := run([]string{"-scenario", "download", "-mode", "baseline", "-size", "10"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunDownloadStopWatchUDP(t *testing.T) {
	if err := run([]string{"-scenario", "download", "-mode", "stopwatch", "-size", "10", "-transport", "udp"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunNFS(t *testing.T) {
	if err := run([]string{"-scenario", "nfs", "-mode", "baseline", "-rate", "50", "-duration", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsUnknowns(t *testing.T) {
	for _, args := range [][]string{
		{"-scenario", "bogus"},
		{"-mode", "bogus"},
		{"-scenario", "download", "-transport", "bogus"},
		{"-scenario", "parsec", "-app", "bogus"},
		{"-nonflag"},
	} {
		if err := run(args); err == nil {
			t.Fatalf("args %v should fail", args)
		}
	}
}

func TestRunLifecycle(t *testing.T) {
	if err := run([]string{"-scenario", "lifecycle", "-duration", "4"}); err != nil {
		t.Fatal(err)
	}
}

// TestRunLifecycleWithListen: the observability server rides along without
// disturbing the lifecycle walkthrough (same detector-driven recovery, same
// lockstep checks), and a non-loopback address is refused up front.
func TestRunLifecycleWithListen(t *testing.T) {
	if err := run([]string{"-scenario", "lifecycle", "-duration", "4", "-listen", "127.0.0.1:0"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-scenario", "lifecycle", "-duration", "4", "-listen", "0.0.0.0:0"}); err == nil {
		t.Fatal("non-loopback listen address accepted")
	}
}
