// Quickstart: build a three-host StopWatch cloud, deploy a triplicated
// file-serving guest VM, download a file through the ingress/egress
// gateways, and verify that the three replicas stayed in virtual-time
// lockstep (identical output digests).
package main

import (
	"fmt"
	"log"

	"stopwatch"
)

func main() {
	// A cloud of three machines under the StopWatch VMM: each host has its
	// own clock offset/drift; guests see only virtual time.
	cfg := stopwatch.DefaultClusterConfig()
	cfg.Seed = 42
	cloud, err := stopwatch.NewCluster(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Deploy one guest, triplicated across hosts {0,1,2}. The factory runs
	// once per replica: replicas must not share mutable state.
	web, err := cloud.Deploy("web", []int{0, 1, 2}, func() stopwatch.App {
		fs, err := stopwatch.NewFileServer(stopwatch.DefaultFileServerConfig())
		if err != nil {
			log.Fatal(err)
		}
		return fs
	})
	if err != nil {
		log.Fatal(err)
	}

	// An external client (the paper's laptop on the campus WLAN).
	client, err := cloud.NewClient("laptop")
	if err != nil {
		log.Fatal(err)
	}

	cloud.Start()

	// Download a 100KB file over the TCP-like transport. Every inbound
	// packet (SYN, ACKs, the request) is replicated by the ingress to all
	// three replicas and delivered at the median proposed virtual time;
	// every outbound packet leaves when its second copy reaches the egress.
	dl := stopwatch.NewDownloader(client)
	var latencyMS float64
	cloud.Loop().At(stopwatch.Millis(20), "fetch", func() {
		err := dl.Fetch(stopwatch.GuestAddr("web"), stopwatch.ModeTCP, 100<<10,
			func(lat stopwatch.Time) { latencyMS = lat.Milliseconds() })
		if err != nil {
			log.Fatal(err)
		}
	})
	if err := cloud.Run(stopwatch.Seconds(30)); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("download latency: %.2f ms\n", latencyMS)
	fmt.Printf("ingress replicated %d inbound packets to 3 hosts\n", cloud.Ingress().Replicated())
	fmt.Printf("egress forwarded %d output packets (median copies)\n", cloud.Egress().Forwarded())

	// The defense's foundation: all three replicas executed
	// deterministically and emitted byte-identical output streams.
	if err := web.CheckLockstep(); err != nil {
		log.Fatalf("replicas diverged: %v", err)
	}
	fmt.Println("replica lockstep: ok — identical output digests across all 3 replicas")
	fmt.Printf("synchrony violations (divergences): %d\n", web.Divergences())
	for _, r := range web.Replicas() {
		s := r.Runtime().VM().Stats()
		fmt.Printf("replica %d on %-6s: %4d net interrupts, %2d disk interrupts, digest %016x\n",
			r.Slot(), r.HostName(), s.NetInterrupts, s.DiskInterrupts, r.Runtime().VM().OutputDigest())
	}

	fmt.Println()
	fmt.Print(cloud.Report())
}
