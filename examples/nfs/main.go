// NFS: the Fig-6 workload — an NFS server guest under nhfsstone-style load
// (the paper's extracted op mix, 5 client processes, constant aggregate
// rate), measured under both hypervisors.
package main

import (
	"fmt"
	"log"

	"stopwatch"
)

func main() {
	cfg := stopwatch.DefaultFig6Config()
	cfg.Rates = []float64{25, 100, 400}
	cfg.LoadDuration = stopwatch.Seconds(3)

	fmt.Println("op mix (extracted via nfsstat in the paper):")
	for _, m := range stopwatch.PaperNFSMix() {
		fmt.Printf("  %-8s %6.2f%%\n", m.Op, m.Weight)
	}
	fmt.Println()

	r, err := stopwatch.RunFig6(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(r.Render())

	fmt.Println("note the c→s packets-per-op falling with load: delayed-ACK")
	fmt.Println("coalescing and piggybacking — the effect behind the paper's")
	fmt.Println("only-logarithmic latency growth under StopWatch.")
}
