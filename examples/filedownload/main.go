// Filedownload: a compact Fig-5 sweep — file-retrieval latency over the
// TCP-like and UDP-like transports, under the baseline VMM and under
// StopWatch. Reproduces the paper's two headline observations: HTTP pays
// the Δn tax on every inbound packet (≈2–3x), while UDP (no inbound
// acknowledgments) stays competitive with the baselines.
package main

import (
	"fmt"
	"log"

	"stopwatch"
)

func main() {
	cfg := stopwatch.DefaultFig5Config()
	cfg.SizesKB = []int{10, 100, 1000}
	cfg.Runs = 3

	fmt.Println("sweeping sizes × transports × VMMs (12 cold-start clusters)...")
	r, err := stopwatch.RunFig5(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println(r.Render())

	fmt.Println("the paper's adaptation argument in action:")
	for _, p := range r.Points {
		fmt.Printf("  %5d KB: HTTP pays %.1fx under StopWatch; UDP only %.1fx\n",
			p.SizeKB, p.HTTPRatio, p.UDPRatio)
	}
}
