// Parsec: the Fig-7 computation workloads — five calibrated compute/disk
// profiles run to completion under both hypervisors, demonstrating that
// StopWatch's computational overhead is driven by disk interrupts (each
// pays the Δd virtual-time delivery offset).
package main

import (
	"fmt"
	"log"

	"stopwatch"
)

func main() {
	cfg := stopwatch.DefaultFig7Config()

	fmt.Println("running 5 profiles × 2 hypervisors...")
	r, err := stopwatch.RunFig7(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Println(r.Render())

	fmt.Println("per-disk-interrupt overhead (the Fig-7b correlation):")
	for _, p := range r.Points {
		perInt := (p.StopWatch - p.Baseline) / float64(p.DiskInterrupts)
		fmt.Printf("  %-14s %6.2f ms per disk interrupt\n", p.Name, perInt)
	}
}
