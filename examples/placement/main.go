// Placement: Sec. VIII of the paper — how many guests can a StopWatch
// cloud actually run? The constraint (each guest's three replicas coreside
// with nonoverlapping sets of other VMs' replicas) is an edge-disjoint
// triangle packing of K_n; Theorem 2's constructive algorithm achieves
// Θ(cn) guests on n machines of capacity c, versus n for the alternative of
// running every guest alone on its own machine.
package main

import (
	"fmt"
	"log"

	"stopwatch"
)

func main() {
	fmt.Println("StopWatch replica placement (Theorems 1-2)")
	fmt.Println()

	// A mid-size cloud: 21 machines, each able to host 10 guest VMs.
	const n, c = 21, 10
	p, err := stopwatch.PlaceTheorem2(n, c)
	if err != nil {
		log.Fatal(err)
	}
	if err := p.Verify(); err != nil {
		log.Fatal(err) // edge-disjointness and capacity, machine-checked
	}
	max, err := stopwatch.Theorem1Max(n)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cloud: n=%d machines, capacity c=%d guests each\n", n, c)
	fmt.Printf("Theorem-2 placement: %d simultaneous guests (3 replicas each)\n", p.Guests())
	fmt.Printf("isolation baseline:  %d guests (one per machine)\n", n)
	fmt.Printf("Theorem-1 maximum:   %d (ignoring capacity)\n", max)
	fmt.Println()

	fmt.Println("first guests' replica machines:")
	for i, tri := range p.Triangles[:6] {
		fmt.Printf("  guest %d → machines {%d, %d, %d}\n", i, tri[0], tri[1], tri[2])
	}
	fmt.Println("  ...")
	fmt.Println()

	// The Θ(cn) scaling across cloud sizes.
	fmt.Printf("%6s %6s %14s %10s %8s\n", "n", "c", "Thm-2 guests", "isolated", "gain")
	for _, nn := range []int{9, 21, 45, 99, 201} {
		cc := (nn - 1) / 2
		k, err := stopwatch.Theorem2Guests(nn, cc)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%6d %6d %14d %10d %7.1fx\n", nn, cc, k, nn, float64(k)/float64(nn))
	}
	fmt.Println()
	fmt.Println("greedy packing covers cluster sizes outside the n ≡ 3 (mod 6) family:")
	for _, nn := range []int{10, 16, 20} {
		g, err := stopwatch.GreedyPack(nn, (nn-1)/2)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  n=%2d → %d guests (verified: %v)\n", nn, g.Guests(), g.Verify() == nil)
	}
}
