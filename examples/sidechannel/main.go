// Sidechannel: the paper's core security experiment (Fig. 4). An attacker
// VM times its inbound packet stream while a victim VM — coresident with
// exactly one attacker replica — serves files. Compare how hard detecting
// the victim is with and without StopWatch.
package main

import (
	"fmt"
	"log"

	"stopwatch"
)

func main() {
	cfg := stopwatch.DefaultFig4Config()
	cfg.Duration = stopwatch.Seconds(15)

	fmt.Println("running 4 simulations (StopWatch/baseline × victim/no-victim)...")
	r, err := stopwatch.RunFig4(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println()
	fmt.Println(r.Render())

	fmt.Println("interpretation:")
	fmt.Printf("  Without StopWatch the victim's activity shifts the attacker's\n")
	fmt.Printf("  observed timing distribution by KS=%.3f; under StopWatch the\n", r.KSBaseline)
	fmt.Printf("  median-of-3 delivery shrinks that fingerprint to KS=%.3f.\n", r.KSStopWatch)
	last := len(r.Confidences) - 1
	fmt.Printf("  At 99%% confidence the attacker needs ~%.0f observations instead\n", r.ObsWith[last])
	fmt.Printf("  of ~%.0f — a %.0fx increase in attack effort.\n",
		r.ObsWithout[last], r.ObsWith[last]/r.ObsWithout[last])
}
