// Churn walkthrough: run a StopWatch cloud as a multi-tenant service
// driven through the unified operations API. Every lifecycle mutation —
// admitting tenants onto edge-disjoint replica triangles, evicting one,
// replacing a crashed replica from the survivors' determinism journal,
// draining a whole machine for maintenance — is a typed Op submitted
// through ControlPlane.Apply; a Watch subscription streams each operation's
// barrier phases as they happen, and the append-only op log summarizes the
// run at the end.
package main

import (
	"errors"
	"fmt"
	"log"

	"stopwatch"
)

// pinger is a custom guest workload: a deterministic periodic sender.
// Replicas run identical virtual clocks, so every replica emits the same
// packets at the same virtual instants.
type pinger struct {
	n int64
}

func (p *pinger) Boot(ctx stopwatch.Ctx) { ctx.SetTimer(stopwatch.Virtual(5_000_000), "tick") }

func (p *pinger) OnTimer(ctx stopwatch.Ctx, tag string) {
	p.n++
	ctx.Compute(300_000)
	ctx.Send("sink", 128, p.n)
	ctx.SetTimer(stopwatch.Virtual(5_000_000), "tick")
}

func (p *pinger) OnPacket(ctx stopwatch.Ctx, in stopwatch.Payload)   {}
func (p *pinger) OnDiskDone(ctx stopwatch.Ctx, d stopwatch.DiskDone) {}

func main() {
	// A 12-machine cloud; each machine may host up to 3 replicas.
	cfg := stopwatch.DefaultClusterConfig()
	cfg.Seed = 11
	cfg.Hosts = 12
	cloud, err := stopwatch.NewCluster(cfg)
	if err != nil {
		log.Fatal(err)
	}
	cp, err := stopwatch.NewControlPlane(cloud, stopwatch.DefaultControlPlaneConfig(3))
	if err != nil {
		log.Fatal(err)
	}
	// Stream the replacement barrier's phases as the operations run:
	// pause → quiesce → rehome → replace → resume, each stamped in
	// simulated time. The same stream carries OpStarted / OpCompleted /
	// OpFailed for every op, child evacuation moves included.
	cp.Watch(func(ev stopwatch.OpEvent) {
		if _, isReplace := ev.Op.(stopwatch.ReplaceOp); isReplace && ev.Kind == stopwatch.PhaseReached {
			fmt.Printf("    t=%.3fs  #%d %s: %s\n", float64(ev.At)/1e9, ev.Seq, ev.Op, ev.Phase)
		}
	})
	cloud.Start()

	// Admit tenants online — each gets a replica triangle no two of which
	// share more than one machine (the nonoverlap constraint). We stop
	// short of packing the cloud solid: replacement needs headroom, since a
	// re-homed replica must land on a machine whose edges to both survivors
	// are still free. (Admitting until the pool rejects is how you find the
	// packing limit — cmd/churn drives that regime.)
	factory := func() stopwatch.App { return &pinger{} }
	for i := 0; i < 7; i++ {
		id := fmt.Sprintf("tenant-%d", i)
		oc := cp.Apply(stopwatch.AdmitOp{GuestID: id, Factory: factory})
		if oc.Err != nil {
			log.Fatal(oc.Err)
		}
		fmt.Printf("%s admitted on triangle %v\n", id, oc.Triangle)
	}

	// Evict a tenant mid-run: its edges and capacity return to the pool.
	cloud.Loop().At(stopwatch.Millis(300), "evict", func() {
		if oc := cp.Apply(stopwatch.EvictOp{GuestID: "tenant-1"}); oc.Err != nil {
			log.Fatal(oc.Err)
		}
		fmt.Printf("t=0.3s: evicted tenant-1 (utilization %.2f)\n", cp.Utilization())
	})

	// Crash tenant-0's replica on the first machine of its triangle, then
	// submit a ReplaceOp. The barrier pauses the guest's ingress stream,
	// drains in-flight proposals, re-homes the replica via the pool, replays
	// the journal to the survivors' instruction count, and resumes — watch
	// the phases stream above.
	g, _ := cloud.Guest("tenant-0")
	tri, _ := cp.Pool().Triangle("tenant-0")
	cloud.Loop().At(stopwatch.Millis(500), "fail", func() {
		fmt.Printf("t=0.5s: killing tenant-0's replica on host %d\n", tri[0])
		for _, r := range g.Replicas() {
			if r.Host() == tri[0] {
				r.Runtime().Stop()
			}
		}
		cp.Apply(stopwatch.ReplaceOp{GuestID: "tenant-0", DeadHost: tri[0], Done: func(oc *stopwatch.Outcome) {
			if oc.Err != nil {
				log.Fatal(oc.Err)
			}
			pause, _ := oc.PhaseAt("pause")
			resume, _ := oc.PhaseAt("resume")
			fmt.Printf("t=%.2fs: replica replaced, new triangle %v (barrier %.0fms)\n",
				float64(cloud.Loop().Now())/1e9, oc.Triangle, float64(resume-pause)/1e6)
		}})
	})

	// Planned maintenance: drain a whole machine. Its capacity leaves the
	// pool and every resident replica is evacuated through a child
	// ReplaceOp of the one DrainOp, one guest at a time.
	cloud.Loop().At(stopwatch.Millis(1500), "drain", func() {
		victim := 0
		residents := cp.Pool().Residents(victim)
		fmt.Printf("t=1.5s: draining host %d (%d resident replicas)\n", victim, len(residents))
		cp.Apply(stopwatch.DrainOp{Machine: victim, Done: func(oc *stopwatch.Outcome) {
			if oc.Err != nil {
				log.Fatal(oc.Err)
			}
			fmt.Printf("t=%.2fs: host %d empty — %d guests evacuated, back in the pool after maintenance\n",
				float64(cloud.Loop().Now())/1e9, victim, len(oc.Guests))
			if oc := cp.Apply(stopwatch.UndrainOp{Machine: victim}); oc.Err != nil {
				log.Fatal(oc.Err)
			}
		}})
	})

	// A late arrival takes whatever capacity the churn left behind. An
	// admission the packing cannot satisfy is a typed, logged outcome —
	// errors.Is(oc.Err, ErrNoFeasibleHost) is the one infeasibility check
	// across every operation.
	cloud.Loop().At(stopwatch.Seconds(1), "late-admit", func() {
		oc := cp.Apply(stopwatch.AdmitOp{GuestID: "tenant-late", Factory: factory})
		if errors.Is(oc.Err, stopwatch.ErrNoFeasibleHost) {
			fmt.Println("t=1s: tenant-late rejected — cloud still full")
			return
		}
		if oc.Err != nil {
			log.Fatal(oc.Err)
		}
		fmt.Printf("t=1s: admitted tenant-late on %v\n", oc.Triangle)
	})

	if err := cloud.Run(stopwatch.Seconds(3)); err != nil {
		log.Fatal(err)
	}

	// Every placement decision left the packing edge-disjoint, and the
	// replaced replica is indistinguishable from its peers.
	if err := cp.Verify(); err != nil {
		log.Fatal(err)
	}
	if err := g.CheckLockstepPrefix(); err != nil {
		log.Fatal(err)
	}
	st := stopwatch.FoldOpStats(cp.Log())
	fmt.Printf("final: %d tenants resident, utilization %.2f, tenant-0 in lockstep after %d replacement(s)\n",
		cp.Residents(), cp.Utilization(), g.Replaced)
	fmt.Printf("op log: %d ops — admitted=%d evicted=%d replacements=%d drains=%d evacuations=%d (stats folded from the log)\n",
		len(cp.Log()), st.Admitted, st.Evicted, st.Replacements, st.HostDrains, st.Evacuations)
}
