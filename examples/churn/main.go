// Churn walkthrough: run a StopWatch cloud as a multi-tenant service with
// an online control plane. Guests are admitted onto edge-disjoint replica
// triangles chosen by the incremental packer, evicted to free capacity, and
// a crashed replica is replaced mid-run — reconstructed from the survivors'
// determinism journal and re-synced into lockstep, the recovery path the
// paper sketches in Sec. VII.
package main

import (
	"errors"
	"fmt"
	"log"

	"stopwatch"
)

// pinger is a custom guest workload: a deterministic periodic sender.
// Replicas run identical virtual clocks, so every replica emits the same
// packets at the same virtual instants.
type pinger struct {
	n int64
}

func (p *pinger) Boot(ctx stopwatch.Ctx) { ctx.SetTimer(stopwatch.Virtual(5_000_000), "tick") }

func (p *pinger) OnTimer(ctx stopwatch.Ctx, tag string) {
	p.n++
	ctx.Compute(300_000)
	ctx.Send("sink", 128, p.n)
	ctx.SetTimer(stopwatch.Virtual(5_000_000), "tick")
}

func (p *pinger) OnPacket(ctx stopwatch.Ctx, in stopwatch.Payload)   {}
func (p *pinger) OnDiskDone(ctx stopwatch.Ctx, d stopwatch.DiskDone) {}

func main() {
	// A 12-machine cloud; each machine may host up to 3 replicas.
	cfg := stopwatch.DefaultClusterConfig()
	cfg.Seed = 11
	cfg.Hosts = 12
	cloud, err := stopwatch.NewCluster(cfg)
	if err != nil {
		log.Fatal(err)
	}
	cp, err := stopwatch.NewControlPlane(cloud, stopwatch.DefaultControlPlaneConfig(3))
	if err != nil {
		log.Fatal(err)
	}
	cloud.Start()

	// Admit tenants online — each gets a replica triangle no two of which
	// share more than one machine (the nonoverlap constraint). We stop
	// short of packing the cloud solid: replacement needs headroom, since a
	// re-homed replica must land on a machine whose edges to both survivors
	// are still free. (Admitting until ErrAdmissionRejected is how you find
	// the packing limit — cmd/churn drives that regime.)
	factory := func() stopwatch.App { return &pinger{} }
	for i := 0; i < 7; i++ {
		id := fmt.Sprintf("tenant-%d", i)
		_, tri, err := cp.Admit(id, factory)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s admitted on triangle %v\n", id, tri)
	}

	// Evict a tenant mid-run: its edges and capacity return to the pool.
	cloud.Loop().At(stopwatch.Millis(300), "evict", func() {
		if err := cp.Evict("tenant-1"); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("t=0.3s: evicted tenant-1 (utilization %.2f)\n", cp.Utilization())
	})

	// Crash tenant-0's replica on the first machine of its triangle, then
	// ask the control plane to replace it. The protocol pauses the guest's
	// ingress stream, drains in-flight proposals, re-homes the replica via
	// the pool, replays the journal to the survivors' instruction count,
	// and resumes.
	g, _ := cloud.Guest("tenant-0")
	tri, _ := cp.Pool().Triangle("tenant-0")
	cloud.Loop().At(stopwatch.Millis(500), "fail", func() {
		fmt.Printf("t=0.5s: killing tenant-0's replica on host %d\n", tri[0])
		for _, r := range g.Replicas() {
			if r.Host() == tri[0] {
				r.Runtime().Stop()
			}
		}
		err := cp.ReplaceReplica("tenant-0", tri[0], func(err error) {
			if err != nil {
				log.Fatal(err)
			}
			nt, _ := cp.Pool().Triangle("tenant-0")
			fmt.Printf("t=%.2fs: replica replaced, new triangle %v\n",
				float64(cloud.Loop().Now())/1e9, nt)
		})
		if err != nil {
			log.Fatal(err)
		}
	})

	// Planned maintenance: drain a whole machine. Its capacity leaves the
	// pool and every resident replica is evacuated through the same
	// pause→quiesce→rehome→replace→resume barrier, one guest at a time.
	cloud.Loop().At(stopwatch.Millis(1500), "drain", func() {
		victim := 0
		residents := cp.Pool().Residents(victim)
		fmt.Printf("t=1.5s: draining host %d (%d resident replicas)\n", victim, len(residents))
		err := cp.DrainHost(victim, func(err error) {
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("t=%.2fs: host %d empty — %d guests evacuated, back in the pool after maintenance\n",
				float64(cloud.Loop().Now())/1e9, victim, len(residents))
			if err := cp.UndrainHost(victim); err != nil {
				log.Fatal(err)
			}
		})
		if err != nil {
			log.Fatal(err)
		}
	})

	// A late arrival takes whatever capacity the churn left behind.
	cloud.Loop().At(stopwatch.Seconds(1), "late-admit", func() {
		_, tri, err := cp.Admit("tenant-late", factory)
		if errors.Is(err, stopwatch.ErrAdmissionRejected) {
			fmt.Println("t=1s: tenant-late rejected — cloud still full")
			return
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("t=1s: admitted tenant-late on %v\n", tri)
	})

	if err := cloud.Run(stopwatch.Seconds(3)); err != nil {
		log.Fatal(err)
	}

	// Every placement decision left the packing edge-disjoint, and the
	// replaced replica is indistinguishable from its peers.
	if err := cp.Verify(); err != nil {
		log.Fatal(err)
	}
	if err := g.CheckLockstepPrefix(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final: %d tenants resident, utilization %.2f, tenant-0 in lockstep after %d replacement(s)\n",
		cp.Residents(), cp.Utilization(), g.Replaced)
}
